#include "src/harness/serve.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <memory>
#include <stdexcept>
#include <utility>

#include "src/core/engine_factory.h"
#include "src/linalg/matrix.h"
#include "src/util/hash.h"
#include "src/util/require.h"
#include "src/util/rng.h"
#include "src/util/thread_pool.h"

namespace s2c2::harness {

using util::fnv1a;
using util::hex64;
using util::mix64;

namespace {

/// Serve-layer seed salt — deliberately distinct from the scenario
/// matrix's trace_salt/cell_seed streams, so adding the serving layer
/// cannot perturb a single bit of the pinned sweep goldens.
std::uint64_t serve_salt(std::uint64_t seed) {
  return mix64(seed ^ 0x5e12e1a7c0a1e5ceull);
}

struct Request {
  double arrival = 0.0;
  std::size_t tenant = 0;
  linalg::Vector x;  // empty in cost-only mode
};

/// Builds a fresh engine for the config (probe and serve runs must not
/// share one: engines mutate their clock/caches). `dense` is borrowed and
/// must outlive the engine; null runs cost-only from rows x cols.
std::unique_ptr<core::StrategyEngine> make_serve_engine(
    const ServeConfig& config, const core::ClusterSpec& spec,
    std::uint64_t salt, const linalg::Matrix* dense, std::size_t rows,
    std::size_t cols) {
  core::EngineParams p;
  p.cluster = spec;
  p.k = config.effective_k();
  p.chunks_per_partition = config.chunks_per_partition;
  // Serving reads true trace speeds at dispatch (oracle): the layer under
  // test is batching/coalescing, not prediction quality.
  p.oracle_speeds = true;
  p.replication.placement_seed = mix64(salt ^ 0x91ace3e9ull);
  p.inner_jobs = config.inner_jobs;
  if (dense != nullptr) {
    p.dense = dense;
  } else {
    p.rows = rows;
    p.cols = cols;
  }
  return core::make_engine(config.strategy, std::move(p));
}

}  // namespace

double percentile(std::vector<double> sample, double q) {
  if (sample.empty()) return 0.0;
  std::sort(sample.begin(), sample.end());
  const double rank = q * static_cast<double>(sample.size());
  const std::size_t idx =
      rank <= 1.0 ? 0
                  : std::min(sample.size() - 1,
                             static_cast<std::size_t>(std::ceil(rank)) - 1);
  return sample[idx];
}

std::string ServeResult::fingerprint() const {
  std::uint64_t h = util::kFnvOffset;
  for (const RequestOutcome& o : outcomes) {
    h = fnv1a(h, static_cast<std::uint64_t>(o.id));
    h = fnv1a(h, static_cast<std::uint64_t>(o.tenant));
    h = fnv1a(h, o.arrival);
    h = fnv1a(h, o.dispatch);
    h = fnv1a(h, o.completion);
    h = fnv1a(h, static_cast<std::uint64_t>(o.round));
    h = fnv1a(h, static_cast<std::uint64_t>(o.width));
    h = fnv1a(h, static_cast<std::uint64_t>(o.rejected ? 1 : 0));
  }
  h = fnv1a(h, static_cast<std::uint64_t>(rounds));
  h = fnv1a(h, static_cast<std::uint64_t>(decode.entries));
  h = fnv1a(h, static_cast<std::uint64_t>(decode.hits));
  h = fnv1a(h, static_cast<std::uint64_t>(decode.misses));
  h = fnv1a(h, decode.factor_flops);
  h = fnv1a(h, decode.solve_flops);
  h = fnv1a(h, max_error);
  return hex64(h);
}

ServeResult run_serve(const ServeConfig& config) {
  S2C2_REQUIRE(config.workers >= 2, "serve needs >= 2 workers");
  S2C2_REQUIRE(config.tenants >= 1, "serve needs >= 1 tenant");
  const std::uint64_t salt = serve_salt(config.seed);

  // Reuse the scenario matrix's trace/cluster machinery (same calibration
  // rules: functional fleets run proportionally slower so network latency
  // does not swamp small operators).
  ScenarioConfig sc;
  sc.workers = config.workers;
  sc.k = config.k;
  sc.stragglers = config.stragglers;
  sc.chunks_per_partition = config.chunks_per_partition;
  sc.rounds = std::max<std::size_t>(config.requests, 16);  // trace length
  sc.seed = config.seed;
  sc.functional = config.functional;
  const core::ClusterSpec spec = make_cluster(config.trace, sc, salt);

  const std::size_t rows =
      config.op_rows != 0
          ? config.op_rows
          : std::max<std::size_t>(240, 2 * config.workers);
  const std::size_t cols = config.op_cols != 0 ? config.op_cols : 36;

  linalg::Matrix dense;
  if (config.functional) {
    util::Rng op_rng(mix64(salt ^ 0x0be7a70ull));
    dense = linalg::Matrix::random_uniform(rows, cols, op_rng);
  }
  const linalg::Matrix* op = config.functional ? &dense : nullptr;

  // Arrival-rate auto-calibration: one latency-only probe round on a
  // throwaway engine (the serving engine must not see the probe — its
  // clock and decode cache belong to real rounds only).
  double rate = config.arrival_rate;
  if (rate <= 0.0) {
    const std::unique_ptr<core::StrategyEngine> probe =
        make_serve_engine(config, spec, salt, op, rows, cols);
    const double probe_latency = probe->run_round().stats.latency();
    S2C2_CHECK(probe_latency > 0.0, "probe round latency must be positive");
    rate = config.load_factor / probe_latency;
  }

  // The full open-loop request stream, generated up front from one seeded
  // stream — arrivals, tenants, and request vectors are independent of
  // how the server later batches them.
  std::vector<Request> reqs(config.requests);
  util::Rng rng(mix64(salt ^ 0xa112ece55ull));
  double t = 0.0;
  for (Request& r : reqs) {
    t += rng.exponential(rate);
    r.arrival = t;
    r.tenant = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(config.tenants) - 1));
    if (config.functional) {
      r.x.resize(cols);
      for (double& v : r.x) v = rng.normal();
    }
  }

  ServeResult result;
  result.config = config;
  result.realized_rate = rate;
  result.outcomes.resize(config.requests);
  for (std::size_t i = 0; i < config.requests; ++i) {
    result.outcomes[i].id = i;
    result.outcomes[i].tenant = reqs[i].tenant;
    result.outcomes[i].arrival = reqs[i].arrival;
  }

  const std::unique_ptr<core::StrategyEngine> engine =
      make_serve_engine(config, spec, salt, op, rows, cols);
  // Strategies without block rounds (the bilinear polynomial family)
  // degrade to width-1 dispatches instead of failing.
  const std::size_t cap = engine->supports_block_rounds()
                              ? std::max<std::size_t>(1, config.max_batch)
                              : 1;

  // The serve loop's own wall clock. The engine's private clock advances
  // only by round latencies — idle gaps waiting for arrivals do not age
  // the speed traces (see the header's clock-semantics note).
  std::deque<std::size_t> queue;
  std::size_t next = 0;
  double clock = 0.0;
  std::vector<double> latencies;
  latencies.reserve(config.requests);

  while (next < reqs.size() || !queue.empty()) {
    if (queue.empty()) clock = std::max(clock, reqs[next].arrival);
    while (next < reqs.size() && reqs[next].arrival <= clock) {
      queue.push_back(next++);
    }
    // Deadline admission: a request whose deadline already passed while
    // queued is dropped at dispatch time, never batched.
    while (!queue.empty() && config.deadline > 0.0 &&
           clock - reqs[queue.front()].arrival > config.deadline) {
      RequestOutcome& o = result.outcomes[queue.front()];
      o.rejected = true;
      o.dispatch = clock;
      o.completion = clock;
      ++result.rejected;
      queue.pop_front();
    }
    if (queue.empty()) continue;

    // Coalesce the head of the queue into one block round.
    const std::size_t width = std::min(cap, queue.size());
    std::vector<std::size_t> batch(queue.begin(), queue.begin() +
                                                      static_cast<std::ptrdiff_t>(width));
    queue.erase(queue.begin(),
                queue.begin() + static_cast<std::ptrdiff_t>(width));

    linalg::Matrix panel;
    if (config.functional) {
      panel = linalg::Matrix(cols, width);
      for (std::size_t j = 0; j < width; ++j) {
        const linalg::Vector& x = reqs[batch[j]].x;
        for (std::size_t r = 0; r < cols; ++r) panel(r, j) = x[r];
      }
    }
    const core::RoundResult res = engine->run_round_block(panel, width);
    const double completion = clock + res.stats.latency();

    for (std::size_t j = 0; j < width; ++j) {
      RequestOutcome& o = result.outcomes[batch[j]];
      o.dispatch = clock;
      o.completion = completion;
      o.round = result.rounds;
      o.width = width;
      latencies.push_back(o.latency());
    }
    result.completed += width;
    result.makespan = std::max(result.makespan, completion);

    if (config.functional) {
      // Column j of the served product must match the direct matvec of
      // request j's vector (the block kernels make this bitwise at b=1;
      // at b>1 the decode chain is column-independent, so the tolerance
      // only absorbs the coded round's encode/decode arithmetic).
      if (width == 1 && res.y.has_value()) {
        const linalg::Vector truth = dense.matvec(reqs[batch[0]].x);
        result.max_error = std::max(
            result.max_error, linalg::max_abs_diff(*res.y, truth));
        ++result.products_verified;
      } else if (res.y_block.has_value()) {
        for (std::size_t j = 0; j < width; ++j) {
          const linalg::Vector truth = dense.matvec(reqs[batch[j]].x);
          double err = 0.0;
          for (std::size_t r = 0; r < rows; ++r) {
            err = std::max(err, std::abs((*res.y_block)(r, j) - truth[r]));
          }
          result.max_error = std::max(result.max_error, err);
          ++result.products_verified;
        }
      }
    }

    ++result.rounds;
    clock = completion;
  }

  if (!latencies.empty()) {
    double sum = 0.0;
    for (const double l : latencies) sum += l;
    result.mean_latency = sum / static_cast<double>(latencies.size());
    result.p50_latency = percentile(latencies, 0.50);
    result.p99_latency = percentile(latencies, 0.99);
  }
  if (result.makespan > 0.0) {
    result.jobs_per_sec =
        static_cast<double>(result.completed) / result.makespan;
  }
  result.decode = engine->decode_stats();
  return result;
}

std::vector<ServeResult> run_serve_sweep(std::span<const ServeConfig> cells,
                                         std::size_t jobs) {
  std::vector<ServeResult> results(cells.size());
  util::parallel_for(cells.size(), jobs, [&](std::size_t i) {
    results[i] = run_serve(cells[i]);
  });
  return results;
}

}  // namespace s2c2::harness
