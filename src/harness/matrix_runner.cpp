#include "src/harness/matrix_runner.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "src/util/thread_pool.h"

namespace s2c2::harness {

MatrixAxes MatrixAxes::full() {
  MatrixAxes axes;
  axes.cluster_sizes = {12, 24, 48};
  axes.predictors = all_predictors();
  return axes;
}

MatrixAxes MatrixAxes::large_scale() {
  MatrixAxes axes;
  // Two workload shapes (tall-dense and square-sparse) x two cluster
  // conditions keep the sweep minutes-scale while still exercising every
  // engine's decode/collection path at fleet sizes the paper never ran.
  axes.workloads = {WorkloadKind::kLogisticRegression,
                    WorkloadKind::kPageRank};
  axes.traces = {TraceProfile::kControlledStragglers,
                 TraceProfile::kStableCloud};
  axes.cluster_sizes = {100, 250, 1000};
  axes.predictors = {PredictorKind::kOracle};
  return axes;
}

MatrixAxes MatrixAxes::robustness() {
  MatrixAxes axes;
  axes.traces = robustness_trace_profiles();
  // Last-value prediction, not oracle: health-informed scaling only wraps
  // a real predictor, and the fail-slow column is exactly the setting
  // where the wrap should beat raw last-value tracking.
  axes.predictors = {PredictorKind::kLastValue};
  return axes;
}

ScenarioConfig cell_config(const ScenarioConfig& base, std::size_t workers,
                           PredictorKind predictor) {
  ScenarioConfig cfg = base;
  cfg.predictor = predictor;
  if (workers == 0 || workers == base.workers) return cfg;
  if (base.workers == 0) {
    throw std::invalid_argument("base config needs a nonzero cluster size");
  }
  cfg.workers = workers;
  // Proportional rescale: an explicit k keeps its redundancy *ratio*; the
  // k = 0 default keeps its n - 2 rule (which the effective_k() accessor
  // already scales). Stragglers (and thereby failure-injection deaths)
  // scale with the fleet so profiles stress the same fraction of it.
  if (base.k != 0) {
    const double ratio =
        static_cast<double>(base.k) / static_cast<double>(base.workers);
    cfg.k = std::max<std::size_t>(
        1, static_cast<std::size_t>(
               std::llround(ratio * static_cast<double>(workers))));
  }
  cfg.stragglers = (base.stragglers * workers) / base.workers;
  return cfg;
}

std::vector<CellCoord> expand_axes(const ScenarioConfig& base,
                                   const MatrixAxes& axes) {
  std::vector<std::size_t> sizes = axes.cluster_sizes;
  if (sizes.empty()) sizes = {base.workers};
  std::vector<CellCoord> coords;
  for (const std::size_t n : sizes) {
    // Prediction-blind engines run once per cluster size (recorded under
    // kOracle); re-running them per predictor would duplicate cells.
    for (const StrategyKind e : axes.engines) {
      if (core::strategy_uses_predictions(e)) continue;
      for (const WorkloadKind w : axes.workloads) {
        for (const TraceProfile t : axes.traces) {
          coords.push_back({e, w, t, n, PredictorKind::kOracle});
        }
      }
    }
    for (const PredictorKind p : axes.predictors) {
      for (const StrategyKind e : axes.engines) {
        if (!core::strategy_uses_predictions(e)) continue;
        for (const WorkloadKind w : axes.workloads) {
          for (const TraceProfile t : axes.traces) {
            coords.push_back({e, w, t, n, p});
          }
        }
      }
    }
  }
  return coords;
}

MatrixResult run_matrix(const ScenarioConfig& base, const MatrixAxes& axes,
                        const RunnerOptions& options) {
  const std::vector<CellCoord> coords = expand_axes(base, axes);
  MatrixResult out;
  out.config = base;
  out.cells.resize(coords.size());
  // Each task owns exactly one preassigned slot, so the output (and every
  // fingerprint derived from it) is identical for any thread count.
  util::parallel_for(coords.size(), options.jobs, [&](std::size_t i) {
    const CellCoord& c = coords[i];
    ScenarioConfig cfg = cell_config(base, c.workers, c.predictor);
    cfg.inner_jobs = options.inner_jobs;
    out.cells[i] = run_cell(cfg, c.engine, c.workload, c.trace);
  });
  return out;
}

}  // namespace s2c2::harness
