#include "src/harness/job_driver.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <memory>
#include <stdexcept>
#include <utility>

#include "src/apps/graph_filter.h"
#include "src/apps/logistic_regression.h"
#include "src/apps/pagerank.h"
#include "src/apps/svm.h"
#include "src/coding/decode_context.h"
#include "src/core/engine_factory.h"
#include "src/telemetry/health_monitor.h"
#include "src/util/hash.h"
#include "src/util/require.h"
#include "src/util/rng.h"
#include "src/util/thread_pool.h"
#include "src/workload/datasets.h"
#include "src/workload/graphs.h"

namespace s2c2::harness {

namespace {

using util::fnv1a;
using util::hex64;
using util::mix64;

/// Axis id of a job strategy — the wire format job fingerprints are
/// built from. {s2c2, mds, replication, overdecomp} = 0..3 is the legacy
/// PR 5 mapping (it predates the unified StrategyKind) and is pinned by
/// the golden fingerprints in tests/fingerprint_guard_test.cpp; the
/// registry additions took the next free ids. Never renumber.
std::uint64_t strategy_axis_id(core::StrategyKind s) {
  switch (s) {
    case core::StrategyKind::kS2C2: return 0;
    case core::StrategyKind::kMds: return 1;
    case core::StrategyKind::kReplication: return 2;
    case core::StrategyKind::kOverDecomp: return 3;
    case core::StrategyKind::kLt: return 4;
    case core::StrategyKind::kAgc: return 5;
    default:
      throw std::invalid_argument(
          std::string("strategy is not a job-driver axis: ") +
          core::strategy_name(s));
  }
}

// Functional operator sizes. Larger than the scenario matrix's functional
// cells on purpose: the paper's regime has per-round worker compute well
// above the master's decode cost (at 21000x2000, compute is ~20x decode),
// and reproducing that *ratio* with real, verifiable decodes needs
// operators wide enough that compute per worker — ~2·(rows/k)·cols flops —
// dominates the ~2·k·rows decode solves. At these shapes compute is 4-10x
// decode; at the matrix's 240x36 it would be the decode that dominates and
// every job-level ordering would invert away from the paper's.
constexpr std::size_t kGdSamples = 960;
constexpr std::size_t kGdFeatures = 480;
constexpr std::size_t kPageRankNodes = 600;
constexpr std::size_t kFilterNodes = 480;

/// Contraction factor of the graph-filter fixed point v <- gamma·L·v
/// (gamma = kFilterAlpha / ||L||_inf), guaranteeing geometric convergence.
constexpr double kFilterAlpha = 0.4;

/// One straggler-protected matrix-vector product under a strategy: the
/// latency comes from a simulated engine round, the numeric product from
/// run_round's unified forwarding — decoded for the coded strategies,
/// exact direct multiply for the uncoded baselines (which compute the
/// true product by construction; only their *time* needs simulating).
/// One class for every strategy: the polymorphic StrategyEngine replaced
/// the per-strategy channel hierarchy this file carried before PR 5.
class StrategyChannel {
 public:
  StrategyChannel(std::unique_ptr<core::StrategyEngine> engine,
                  ColumnPredictor bundle)
      : bundle_(std::move(bundle)), engine_(std::move(engine)) {}

  sim::RoundStats multiply(std::span<const double> x, linalg::Vector& y) {
    core::RoundResult res = engine_->run_round(x);
    // Every strategy forwards the product in functional mode; a missing
    // one would mean the convergence loop silently went latency-only
    // (the PR 3 run_rounds regression, now guarded for all strategies).
    S2C2_CHECK(res.y.has_value(), "functional round must produce a product");
    y = std::move(*res.y);
    return res.stats;
  }

  [[nodiscard]] const sim::Accounting& accounting() const {
    return engine_->accounting();
  }
  [[nodiscard]] double misprediction_rate() const {
    return engine_->misprediction_rate();
  }
  [[nodiscard]] coding::DecodeContextStats decode_stats() const {
    return engine_->decode_stats();
  }
  /// Null for strategies without a health monitor (uncoded baselines).
  [[nodiscard]] const telemetry::HealthMonitor* health() const {
    return engine_->health_monitor();
  }

 private:
  ColumnPredictor bundle_;  // must outlive engine_ (LSTM adapter refs it)
  std::unique_ptr<core::StrategyEngine> engine_;
};

/// Builds one operator's channel under the job's strategy through the
/// engine registry. Dense operators pass `dense`; sparse pass `sparse`
/// (exactly one non-null). The operator must outlive the returned
/// channel: engines borrow it (the uncoded baselines' direct-multiply
/// closures hold a pointer into it, not a copy).
std::unique_ptr<StrategyChannel> make_channel(
    const JobConfig& config, const core::ClusterSpec& spec,
    const linalg::Matrix* dense, const linalg::CsrMatrix* sparse,
    std::uint64_t placement_salt) {
  const ScenarioConfig sc = config.scenario();
  const WorkloadKind column = job_trace_column(config.app);

  core::EngineParams params;
  params.cluster = spec;
  params.dense = dense;
  params.sparse = sparse;
  params.k = config.effective_k();
  params.chunks_per_partition = config.chunks_per_partition;
  params.inner_jobs = config.inner_jobs;
  params.replication.placement_seed = mix64(placement_salt ^ 0x91ace3e9ull);
  // LT symbol-graph seed, salted like replication placement (only the lt
  // factory reads it) — every shard of a job sees the identical code.
  params.code_seed = mix64(placement_salt ^ 0x17c0deull);
  // Health-informed prediction only on the robustness traces: the scale
  // hook changes allocations, and the default-grid traces are pinned by
  // the JobSuite golden fingerprint.
  params.health_informed = trace_profile_is_robustness(config.trace);

  ColumnPredictor bundle;
  if (core::strategy_uses_predictions(config.strategy)) {
    bundle = make_column_predictor(sc, column, config.trace);
    params.oracle_speeds = bundle.oracle();
    params.predictor = std::move(bundle.predictor);
  } else if (core::strategy_is_coded(config.strategy)) {
    // The prediction-blind coded strategies (mds, lt) allocate everyone a
    // full partition; speeds only feed their misprediction telemetry, so
    // they read the oracle.
    params.oracle_speeds = true;
  }
  return std::make_unique<StrategyChannel>(
      core::make_engine(config.strategy, std::move(params)),
      std::move(bundle));
}

/// Per-round bookkeeping accumulated by the app loops.
struct RoundLog {
  std::size_t rounds = 0;
  std::size_t timeouts = 0;
  double completion_time = 0.0;
  std::size_t reassigned_chunks = 0;
  std::size_t data_moves = 0;
  std::size_t byzantine_detected = 0;
  std::size_t corrupted_chunks = 0;

  void record(const sim::RoundStats& stats) {
    ++rounds;
    timeouts += stats.timeout_fired ? 1 : 0;
    completion_time += stats.latency();
    reassigned_chunks += stats.reassigned_chunks;
    data_moves += stats.data_moves;
    byzantine_detected += stats.byzantine_detected;
    corrupted_chunks += stats.corrupted_chunks;
  }

  /// Transcribes the log (and the channels' accounting) into the result —
  /// the one place every app loop finishes through.
  void finish(JobResult& result,
              std::span<const StrategyChannel* const> channels) const;
};

/// Sums the channels' per-worker accounts into the job-level totals.
void aggregate_accounting(
    JobResult& result, std::span<const StrategyChannel* const> channels);

void RoundLog::finish(JobResult& result,
                      std::span<const StrategyChannel* const> channels) const {
  result.rounds = rounds;
  result.completion_time = completion_time;
  result.timeout_rate =
      rounds > 0 ? static_cast<double>(timeouts) / static_cast<double>(rounds)
                 : 0.0;
  result.reassigned_chunks = reassigned_chunks;
  result.data_moves = data_moves;
  result.byzantine_detected = byzantine_detected;
  result.corrupted_chunks = corrupted_chunks;
  // End-of-job health snapshot. A GD job's forward and backward channels
  // monitor the same fleet, so take the pessimistic view across channels.
  bool any_monitor = false;
  double min_ttf = std::numeric_limits<double>::infinity();
  for (const StrategyChannel* ch : channels) {
    const telemetry::HealthMonitor* hm = ch->health();
    if (hm == nullptr) continue;
    any_monitor = true;
    result.degrading_workers =
        std::max(result.degrading_workers, hm->degrading_count());
    min_ttf = std::min(min_ttf, hm->min_time_to_failure());
  }
  result.health_min_ttf = any_monitor ? min_ttf : 0.0;
  aggregate_accounting(result, channels);
}

void aggregate_accounting(
    JobResult& result, std::span<const StrategyChannel* const> channels) {
  std::size_t workers = 0;
  for (const StrategyChannel* ch : channels) {
    workers = std::max(workers, ch->accounting().num_workers());
  }
  double fraction_sum = 0.0;
  for (std::size_t w = 0; w < workers; ++w) {
    double useful = 0.0, wasted = 0.0;
    for (const StrategyChannel* ch : channels) {
      const sim::WorkerAccount& acct = ch->accounting().worker(w);
      useful += acct.useful_work;
      wasted += acct.wasted_work;
      result.total_busy += acct.busy_time;
    }
    result.total_useful += useful;
    result.total_wasted += wasted;
    const double total = useful + wasted;
    fraction_sum += total > 0.0 ? wasted / total : 0.0;
  }
  result.mean_wasted_fraction =
      workers > 0 ? fraction_sum / static_cast<double>(workers) : 0.0;
  double mispred = 0.0;
  for (const StrategyChannel* ch : channels) {
    mispred += ch->misprediction_rate();
    const coding::DecodeContextStats ds = ch->decode_stats();
    result.decode_sets += ds.entries;
    result.decode_cache_hits += ds.hits;
  }
  result.misprediction_rate =
      channels.empty() ? 0.0 : mispred / static_cast<double>(channels.size());
}

/// Operator seed for the job's (app, trace) column — deliberately
/// independent of the strategy, so every strategy trains/iterates on the
/// same dataset (the trace-salt rule, applied to operators).
std::uint64_t operator_salt(const JobConfig& config) {
  return mix64(trace_salt(config.seed, job_trace_column(config.app),
                          config.trace) ^
               0x0bd0a70ull);
}

/// Relative-change convergence test for the objective-driven apps.
bool objective_converged(double prev, double cur, double tolerance) {
  return std::abs(prev - cur) <= tolerance * std::max(1.0, std::abs(cur));
}

/// Flops of one round's main product — the per-app analogue of the matrix
/// cell shape the trace generator is calibrated against.
double app_round_flops(JobApp app) {
  switch (app) {
    case JobApp::kLogReg:
    case JobApp::kSvm:
      return core::matvec_flops(kGdSamples, kGdFeatures);
    case JobApp::kPageRank:
      return core::matvec_flops(kPageRankNodes, kPageRankNodes);
    case JobApp::kGraphFilter:
      return core::matvec_flops(kFilterNodes, kFilterNodes);
  }
  return core::matvec_flops(kGdSamples, kGdFeatures);
}

/// The job's cluster: the shared per-(app, trace) traces from the matrix
/// harness, with the fleet recalibrated to the driver's operator scale.
/// Two corrections on top of make_cluster's functional fleet:
///  * worker_flops scales with the operator so one job round still spans
///    roughly one trace sample period — the paper measures one speed
///    sample per iteration, and without this the driver's wider operators
///    would smear dozens of regime switches into every round;
///  * master_flops gets a 6x boost so the decode:compute ratio lands near
///    the paper's (~5% at 21000x2000); at the driver's functional scale an
///    equal-speed master would spend ~30% of every round decoding and the
///    decode term, not the straggler schedule, would decide every
///    cross-strategy comparison.
core::ClusterSpec job_cluster(const JobConfig& config) {
  const ScenarioConfig sc = config.scenario();
  core::ClusterSpec spec =
      make_cluster(config.trace, sc,
                   trace_salt(config.seed, job_trace_column(config.app),
                              config.trace));
  const WorkloadShape matrix_shape =
      workload_shape(WorkloadKind::kLogisticRegression, sc);
  const double matrix_flops =
      core::matvec_flops(matrix_shape.rows, matrix_shape.cols);
  const double op_ratio = app_round_flops(config.app) / matrix_flops;
  spec.worker_flops *= op_ratio;
  spec.master_flops = 6.0 * spec.worker_flops;
  return spec;
}

void run_gd_job(const JobConfig& config, const core::ClusterSpec& spec,
                JobResult& result) {
  util::Rng op_rng(operator_salt(config));
  const bool svm = config.app == JobApp::kSvm;
  // SVM gets overlapping classes: on a margin-separable blob the hinge
  // objective collapses in 2-3 subgradient steps and the "job" would be
  // too short to measure; logreg's losses decay smoothly either way.
  const workload::Dataset data =
      svm ? workload::make_classification(kGdSamples, kGdFeatures, op_rng,
                                          1.5, 1.2)
          : workload::make_classification(kGdSamples, kGdFeatures, op_rng,
                                          3.0, 0.8);
  const double lr =
      svm ? apps::SvmConfig{}.learning_rate : apps::GdConfig{}.learning_rate;
  const double reg = svm ? apps::SvmConfig{}.lambda : apps::GdConfig{}.l2_reg;

  const linalg::Matrix xt = data.x.transposed();
  const auto fwd = make_channel(config, spec, &data.x, nullptr,
                                operator_salt(config) ^ 0x1ull);
  const auto bwd = make_channel(config, spec, &xt, nullptr,
                                operator_salt(config) ^ 0x2ull);

  linalg::Vector w(kGdFeatures, 0.0);
  linalg::Vector w_ref = w;
  RoundLog log;
  linalg::Vector margins, grad;
  for (std::size_t it = 0; it < config.max_iterations; ++it) {
    log.record(fwd->multiply(w, margins));
    const linalg::Vector resid =
        svm ? apps::hinge_residual(data, margins)
            : apps::logistic_residual(data, margins);
    log.record(bwd->multiply(resid, grad));
    linalg::axpy(reg, w, grad);
    linalg::axpy(-lr, grad, w);

    // Uncoded reference trajectory in lockstep.
    const linalg::Vector g_ref =
        svm ? apps::hinge_subgradient(data, w_ref, reg)
            : apps::logistic_gradient(data, w_ref, reg);
    linalg::axpy(-lr, g_ref, w_ref);
    result.solution_error =
        std::max(result.solution_error, linalg::max_abs_diff(w, w_ref));

    const double obj = svm ? apps::hinge_objective(data, w, reg)
                           : apps::logistic_loss(data, w, reg);
    result.convergence.push_back(obj);
    ++result.iterations;
    if (result.convergence.size() > 1 &&
        objective_converged(result.convergence[result.convergence.size() - 2],
                            obj, config.tolerance)) {
      result.converged = true;
      break;
    }
  }
  const StrategyChannel* chans[] = {fwd.get(), bwd.get()};
  log.finish(result, chans);
}

void run_pagerank_job(const JobConfig& config, const core::ClusterSpec& spec,
                      JobResult& result) {
  util::Rng op_rng(operator_salt(config));
  const linalg::CsrMatrix adj =
      workload::power_law_digraph(kPageRankNodes, 5, op_rng);
  const linalg::CsrMatrix link = workload::link_matrix(adj);
  const std::vector<double> outdeg = apps::out_degrees(adj);
  const double damping = apps::PageRankConfig{}.damping;

  const auto ch =
      make_channel(config, spec, nullptr, &link, operator_salt(config));

  const std::size_t nodes = adj.rows();
  linalg::Vector ranks(nodes, 1.0 / static_cast<double>(nodes));
  linalg::Vector ranks_ref = ranks;
  linalg::Vector t, next(nodes), t_ref(nodes), next_ref(nodes);
  RoundLog log;
  for (std::size_t it = 0; it < config.max_iterations; ++it) {
    log.record(ch->multiply(ranks, t));
    apps::pagerank_update(t, ranks, outdeg, damping, next);

    link.matvec_into(ranks_ref, t_ref);
    apps::pagerank_update(t_ref, ranks_ref, outdeg, damping, next_ref);
    ranks_ref = next_ref;

    double delta = 0.0;
    for (std::size_t i = 0; i < nodes; ++i) {
      delta += std::abs(next[i] - ranks[i]);
    }
    ranks = next;
    result.solution_error =
        std::max(result.solution_error, linalg::max_abs_diff(ranks, ranks_ref));
    result.convergence.push_back(delta);
    ++result.iterations;
    if (delta <= config.tolerance) {
      result.converged = true;
      break;
    }
  }
  const StrategyChannel* chans[] = {ch.get()};
  log.finish(result, chans);
}

void run_filter_job(const JobConfig& config, const core::ClusterSpec& spec,
                    JobResult& result) {
  util::Rng op_rng(operator_salt(config));
  const linalg::CsrMatrix adj =
      workload::random_undirected(kFilterNodes, 0.03, op_rng);
  const linalg::CsrMatrix lap = workload::combinatorial_laplacian(adj);
  linalg::Vector signal(kFilterNodes);
  for (auto& v : signal) v = op_rng.normal();

  // gamma scales the fixed-point map v <- gamma·L·v to contraction factor
  // kFilterAlpha (||L||_inf-normalized), so the diffusion series
  // sum_h (gamma·L)^h · x converges geometrically to tolerance.
  double row_sum_max = 1.0;
  const auto rp = lap.row_ptr();
  const auto vals = lap.values();
  for (std::size_t r = 0; r < lap.rows(); ++r) {
    double s = 0.0;
    for (std::size_t p = rp[r]; p < rp[r + 1]; ++p) s += std::abs(vals[p]);
    row_sum_max = std::max(row_sum_max, s);
  }
  const double gamma = kFilterAlpha / row_sum_max;

  const auto ch =
      make_channel(config, spec, nullptr, &lap, operator_salt(config));

  linalg::Vector power = signal, power_ref = signal;
  linalg::Vector filtered = signal, filtered_ref = signal;
  linalg::Vector y;
  RoundLog log;
  for (std::size_t it = 0; it < config.max_iterations; ++it) {
    log.record(ch->multiply(power, y));
    for (std::size_t i = 0; i < y.size(); ++i) power[i] = gamma * y[i];
    for (std::size_t i = 0; i < power.size(); ++i) filtered[i] += power[i];

    const linalg::Vector y_ref = lap.matvec(power_ref);
    for (std::size_t i = 0; i < y_ref.size(); ++i) {
      power_ref[i] = gamma * y_ref[i];
      filtered_ref[i] += power_ref[i];
    }
    result.solution_error = std::max(
        result.solution_error, linalg::max_abs_diff(filtered, filtered_ref));

    double norm = 0.0;
    for (const double v : power) norm = std::max(norm, std::abs(v));
    result.convergence.push_back(norm);
    ++result.iterations;
    if (norm <= config.tolerance) {
      result.converged = true;
      break;
    }
  }
  const StrategyChannel* chans[] = {ch.get()};
  log.finish(result, chans);
}

}  // namespace

const char* job_app_name(JobApp a) {
  switch (a) {
    case JobApp::kLogReg: return "logreg";
    case JobApp::kSvm: return "svm";
    case JobApp::kPageRank: return "pagerank";
    case JobApp::kGraphFilter: return "graphfilter";
  }
  return "?";
}

std::vector<JobApp> all_job_apps() {
  return {JobApp::kLogReg, JobApp::kSvm, JobApp::kPageRank,
          JobApp::kGraphFilter};
}

std::vector<StrategyKind> all_job_strategies() {
  return {StrategyKind::kS2C2, StrategyKind::kMds, StrategyKind::kReplication,
          StrategyKind::kOverDecomp};
}

std::vector<StrategyKind> extended_job_strategies() {
  std::vector<StrategyKind> out = all_job_strategies();
  out.insert(out.end(), {StrategyKind::kLt, StrategyKind::kAgc});
  return out;
}

WorkloadKind job_trace_column(JobApp a) {
  switch (a) {
    case JobApp::kLogReg: return WorkloadKind::kLogisticRegression;
    case JobApp::kSvm: return WorkloadKind::kSvm;
    case JobApp::kPageRank: return WorkloadKind::kPageRank;
    case JobApp::kGraphFilter: return WorkloadKind::kHessian;
  }
  return WorkloadKind::kLogisticRegression;
}

ScenarioConfig JobConfig::scenario() const {
  ScenarioConfig sc;
  sc.workers = workers;
  sc.k = k;
  sc.stragglers = stragglers;
  sc.chunks_per_partition = chunks_per_partition;
  // Two coded rounds per GD iteration: sizes the cloud-trace horizon so
  // regimes keep drifting for the whole job instead of flatlining early.
  sc.rounds = 2 * max_iterations;
  sc.seed = seed;
  sc.predictor = predictor;
  sc.functional = true;
  sc.inner_jobs = inner_jobs;
  return sc;
}

std::string JobResult::fingerprint() const {
  std::uint64_t h = util::kFnvOffset;
  h = fnv1a(h, static_cast<std::uint64_t>(app));
  h = fnv1a(h, strategy_axis_id(strategy));
  h = fnv1a(h, static_cast<std::uint64_t>(trace));
  h = fnv1a(h, static_cast<std::uint64_t>(workers));
  h = fnv1a(h, static_cast<std::uint64_t>(predictor));
  h = fnv1a(h, static_cast<std::uint64_t>(failed ? 1 : 0));
  h = fnv1a(h, error);
  h = fnv1a(h, static_cast<std::uint64_t>(iterations));
  h = fnv1a(h, static_cast<std::uint64_t>(converged ? 1 : 0));
  h = fnv1a(h, static_cast<std::uint64_t>(rounds));
  h = fnv1a(h, completion_time);
  h = fnv1a(h, total_useful);
  h = fnv1a(h, total_wasted);
  h = fnv1a(h, total_busy);
  h = fnv1a(h, mean_wasted_fraction);
  h = fnv1a(h, timeout_rate);
  h = fnv1a(h, misprediction_rate);
  h = fnv1a(h, static_cast<std::uint64_t>(reassigned_chunks));
  h = fnv1a(h, static_cast<std::uint64_t>(data_moves));
  h = fnv1a(h, static_cast<std::uint64_t>(decode_sets));
  h = fnv1a(h, static_cast<std::uint64_t>(decode_cache_hits));
  // Robustness fields are hashed only on the robustness traces: the
  // JobSuite golden pins the default grid (controlled + volatile traces),
  // where these stay identically zero and must not perturb the hash.
  if (trace_profile_is_robustness(trace)) {
    h = fnv1a(h, static_cast<std::uint64_t>(byzantine_detected));
    h = fnv1a(h, static_cast<std::uint64_t>(corrupted_chunks));
    h = fnv1a(h, static_cast<std::uint64_t>(degrading_workers));
    h = fnv1a(h, health_min_ttf);
  }
  for (const double v : convergence) h = fnv1a(h, v);
  h = fnv1a(h, final_metric);
  h = fnv1a(h, solution_error);
  return hex64(h);
}

namespace {

/// A JobResult carrying only the job's identity coordinates — the shared
/// starting point of both the success and the deterministic-failure path.
JobResult identity_result(const JobConfig& config) {
  JobResult result;
  result.app = config.app;
  result.strategy = config.strategy;
  result.trace = config.trace;
  result.workers = config.workers;
  result.predictor = core::strategy_uses_predictions(config.strategy)
                         ? config.predictor
                         : PredictorKind::kOracle;
  return result;
}

}  // namespace

JobResult run_job(const JobConfig& config) {
  if (config.workers < 2) {
    throw std::invalid_argument("job driver needs >= 2 workers");
  }
  // Validate the strategy axis up front: the unified StrategyKind makes
  // every kind type-legal here, but only the driver strategies (the
  // default four plus lt/agc) have job semantics — fail with the axis
  // error, not a deep engine REQUIRE.
  (void)strategy_axis_id(config.strategy);
  JobResult result = identity_result(config);

  // Traces are salted per (app, trace) column, NOT per strategy — all
  // strategies of a column face the same realized cluster.
  const core::ClusterSpec spec = job_cluster(config);
  try {
    switch (config.app) {
      case JobApp::kLogReg:
      case JobApp::kSvm:
        run_gd_job(config, spec, result);
        break;
      case JobApp::kPageRank:
        run_pagerank_job(config, spec, result);
        break;
      case JobApp::kGraphFilter:
        run_filter_job(config, spec, result);
        break;
    }
  } catch (const std::runtime_error& ex) {
    // Unrecoverable cluster failures are data, not crashes: the job
    // records the deterministic failure (partial progress discarded) and
    // the suite continues.
    result = identity_result(config);
    result.failed = true;
    result.error = ex.what();
    return result;
  }
  if (!result.convergence.empty()) {
    result.final_metric = result.convergence.back();
  }
  return result;
}

const JobResult* JobSuiteResult::find(JobApp a, StrategyKind s,
                                      TraceProfile t) const {
  for (const JobResult& job : jobs) {
    if (job.app == a && job.strategy == s && job.trace == t) return &job;
  }
  return nullptr;
}

std::string JobSuiteResult::fingerprint() const {
  std::uint64_t h = util::kFnvOffset;
  for (const JobResult& job : jobs) h = fnv1a(h, job.fingerprint());
  return hex64(h);
}

JobSuiteResult run_job_suite(const JobConfig& base, const JobGrid& grid,
                             std::size_t jobs_threads) {
  struct Coord {
    JobApp app;
    StrategyKind strategy;
    TraceProfile trace;
  };
  std::vector<Coord> coords;
  for (const JobApp a : grid.apps) {
    for (const StrategyKind s : grid.strategies) {
      for (const TraceProfile t : grid.traces) {
        coords.push_back({a, s, t});
      }
    }
  }
  JobSuiteResult out;
  out.base = base;
  out.jobs.resize(coords.size());
  // Each task owns one preassigned slot; run_job is pure in its config, so
  // the suite (and its fingerprint) is byte-identical at any thread count.
  util::parallel_for(coords.size(), jobs_threads, [&](std::size_t i) {
    JobConfig cfg = base;
    cfg.app = coords[i].app;
    cfg.strategy = coords[i].strategy;
    cfg.trace = coords[i].trace;
    out.jobs[i] = run_job(cfg);
  });
  return out;
}

}  // namespace s2c2::harness
