// End-to-end iterative job driver (the paper's §7 evaluation unit).
//
// The scenario matrix measures isolated rounds; the paper's headline
// results are *job-level*: full iterative applications — logistic
// regression and SVM run to objective convergence, PageRank and graph
// filtering to fixed-point tolerance — executed through a
// straggler-mitigation strategy, with every per-iteration matrix-vector
// product straggler-protected. This driver runs one such job end to end,
// feeding each round's decoded product back as the next iterate, and
// records what the paper's figures plot: job completion time (Figs 7-9),
// cumulative useful/wasted/busy work (Fig 10's utilization analogue),
// timeout and misprediction behaviour (§4.3), and the convergence curve.
//
// Strategies:
//   * kS2C2        — MDS code + general S2C2 allocation; real decode.
//   * kMds         — conventional MDS (fastest-k, prior work); real decode.
//   * kReplication — uncoded 3-replication + LATE speculation. Uncoded
//                    execution computes the exact product, so the driver
//                    takes the math from a direct multiply and the latency
//                    from the ReplicationEngine round — the iterate is
//                    exact by construction, only time is simulated.
//   * kOverDecomp  — Charm++-style over-decomposition; same uncoded rule.
//
// Determinism contract (same as the scenario matrix): every stochastic
// choice — operators, traces, predictor training — derives from
// JobConfig::seed mixed with the job's (app, trace) column, *independent
// of strategy*, so all strategies of a column run the same dataset on the
// same realized cluster and comparisons are apples-to-apples. run_job is a
// pure function of its config; run_job_suite shards jobs across a thread
// pool and is byte-identical at any thread count (see fingerprint()).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/harness/scenario_matrix.h"

namespace s2c2::harness {

enum class JobApp {
  kLogReg,       // logistic regression to objective convergence (§6.3)
  kSvm,          // hinge-loss SVM to objective convergence (§7.2)
  kPageRank,     // power iteration to L1 fixed-point tolerance (§6.3)
  kGraphFilter,  // Laplacian diffusion to L-inf fixed-point tolerance (§6.3)
};

[[nodiscard]] const char* job_app_name(JobApp a);
[[nodiscard]] std::vector<JobApp> all_job_apps();

/// The driver's strategy axis: {kS2C2, kMds, kReplication, kOverDecomp}
/// (naming/parsing and the prediction-use predicate live in core —
/// core::strategy_name / core::strategy_uses_predictions; strategies that
/// ignore predictions record kOracle in the result). The default grid is
/// pinned by the JobSuite golden fingerprint and must never grow; the
/// registry additions live in extended_job_strategies().
[[nodiscard]] std::vector<StrategyKind> all_job_strategies();
/// Every kind run_job accepts: the default four plus {kLt, kAgc}.
[[nodiscard]] std::vector<StrategyKind> extended_job_strategies();

/// Workload column an app shares traces/operators with. The first three
/// apps map to their scenario-matrix namesakes; graph filtering reuses the
/// fourth (Hessian) column's salt slot so its traces stay independent of
/// the other apps' columns while remaining strategy-independent.
[[nodiscard]] WorkloadKind job_trace_column(JobApp a);

struct JobConfig {
  JobApp app = JobApp::kLogReg;
  StrategyKind strategy = StrategyKind::kS2C2;
  TraceProfile trace = TraceProfile::kControlledStragglers;

  std::size_t workers = 12;
  std::size_t k = 0;             // MDS parameter; 0 = workers - 2
  /// Controlled/failure profiles. Default 3 > n - k: one straggler more
  /// than the code's slack, the regime where conventional MDS must wait on
  /// a straggler and slack squeezing starts to pay (paper Fig 6's x-axis).
  std::size_t stragglers = 3;
  std::size_t chunks_per_partition = 24;
  std::uint64_t seed = 42;

  /// Intra-round parallelism for the job's engines (forwarded to
  /// core::EngineParams::inner_jobs; 1 = serial, 0 = hardware threads).
  /// Job results are bitwise-invariant across inner_jobs.
  std::size_t inner_jobs = 1;

  /// Speed source for prediction-capable strategies (s2c2, overdecomp).
  PredictorKind predictor = PredictorKind::kOracle;

  /// Iteration cap; jobs that hit it report converged = false.
  std::size_t max_iterations = 25;

  /// Convergence criterion, per app:
  ///   logreg/svm   — relative objective change <= tolerance;
  ///   pagerank     — L1 rank change <= tolerance;
  ///   graph filter — L-inf norm of the current diffusion term <= tolerance.
  double tolerance = 1e-4;

  [[nodiscard]] std::size_t effective_k() const {
    return k != 0 ? k : (workers >= 3 ? workers - 2 : workers);
  }

  /// The equivalent scenario config for trace/cluster/predictor reuse:
  /// functional mode, rounds sized to the iteration budget (two coded
  /// rounds per GD iteration), same seed/workers/k/stragglers/chunks.
  [[nodiscard]] ScenarioConfig scenario() const;
};

struct JobResult {
  JobApp app{};
  StrategyKind strategy{};
  TraceProfile trace{};
  std::size_t workers = 0;
  PredictorKind predictor = PredictorKind::kOracle;

  /// Strategy ran out of redundancy (e.g. replication under failure
  /// injection). Deterministic; `error` participates in the fingerprint.
  bool failed = false;
  std::string error;

  std::size_t iterations = 0;    // application iterations executed
  bool converged = false;
  std::size_t rounds = 0;        // coded rounds (2x iterations for GD apps)

  /// Job completion time: simulated seconds summed over every coded round
  /// on the job's critical path (the Figs 7-9 quantity).
  double completion_time = 0.0;

  // Cumulative cluster accounting across the whole job (Fig 10 analogue).
  double total_useful = 0.0;
  double total_wasted = 0.0;
  double total_busy = 0.0;
  double mean_wasted_fraction = 0.0;  // mean of per-worker wasted fractions

  double timeout_rate = 0.0;          // fraction of rounds with a timeout
  /// Mean of the coded channels' §6.1 misprediction rates (fraction of
  /// (worker, round) predictions off by > 15%); 0 for uncoded baselines.
  double misprediction_rate = 0.0;
  std::size_t reassigned_chunks = 0;  // §4.3 recovery volume
  std::size_t data_moves = 0;         // baseline partition migrations

  // Robustness and worker-health telemetry (telemetry/health_monitor.h;
  // docs/DESIGN.md §7). Summed over rounds except degrading_workers (the
  // health monitor's flag count at job end) and health_min_ttf (the
  // smallest estimated time-to-failure across the fleet at job end; 0 when
  // the strategy has no monitor). Hashed into the fingerprint only on the
  // robustness trace profiles so the PR 5 goldens stay valid.
  std::size_t byzantine_detected = 0;
  std::size_t corrupted_chunks = 0;
  std::size_t degrading_workers = 0;
  double health_min_ttf = 0.0;

  /// Decode-cache telemetry summed over the job's coded channels
  /// (coding/decode_context.h): distinct responder-set factorizations
  /// resident at job end, and lookups served from cache across every
  /// round — iterative jobs repeat responder sets heavily, so hits should
  /// dwarf sets. Zero for the uncoded baselines (no decode stage).
  std::size_t decode_sets = 0;
  std::size_t decode_cache_hits = 0;

  /// Per-iteration convergence metric (objective for logreg/svm, L1 delta
  /// for pagerank, term norm for graph filter); the job's event log —
  /// fingerprint() hashes the exact bit patterns.
  std::vector<double> convergence;
  double final_metric = 0.0;

  /// Max abs deviation of the coded trajectory from the uncoded reference
  /// run in lockstep — ~1e-12-ish decode noise for coded strategies, exact
  /// 0 for the uncoded baselines. A large value here means a strategy
  /// silently degraded the *math*, not just the latency.
  double solution_error = 0.0;

  [[nodiscard]] std::string fingerprint() const;
};

/// Runs one job end to end. Pure in `config` (bit-for-bit reproducible).
[[nodiscard]] JobResult run_job(const JobConfig& config);

/// Axis selection for a suite sweep: apps x strategies x traces, all at
/// the base config's cluster/predictor settings.
struct JobGrid {
  std::vector<JobApp> apps = all_job_apps();
  std::vector<StrategyKind> strategies = all_job_strategies();
  std::vector<TraceProfile> traces = {TraceProfile::kControlledStragglers,
                                      TraceProfile::kVolatileCloud};
};

struct JobSuiteResult {
  JobConfig base;
  std::vector<JobResult> jobs;

  /// nullptr when the job was not part of the sweep.
  [[nodiscard]] const JobResult* find(JobApp a, StrategyKind s,
                                      TraceProfile t) const;

  /// Hash over every job fingerprint (whole-suite determinism check).
  [[nodiscard]] std::string fingerprint() const;
};

/// Runs the grid's cross product, `jobs_threads` jobs at a time on a
/// thread pool (0 = hardware concurrency, 1 = serial). Output order is the
/// axis nesting order (app, strategy, trace) and every result is
/// byte-identical at any thread count.
[[nodiscard]] JobSuiteResult run_job_suite(const JobConfig& base,
                                           const JobGrid& grid,
                                           std::size_t jobs_threads = 1);

}  // namespace s2c2::harness
