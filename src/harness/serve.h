// Coalesced serving harness — the first consumer of the multi-RHS block
// round data path (strategy_engine.h run_round_block).
//
// The paper's rounds are iterations of ONE job; this layer serves MANY
// concurrent jobs through the same coded fleet. Per-tenant matvec requests
// against a shared operator arrive open-loop (Poisson interarrivals);
// the server admits them FIFO, drops requests whose deadline already
// passed at dispatch time, coalesces up to max_batch waiting requests
// into one cols x b panel, and runs a single coded block round for all of
// them. Batching is where coding wins twice: the round's fixed costs
// (input broadcast, collection, and — the big one — the cached
// DecodeContext factorization per responder set) amortize across all b
// columns, so per-request decode cost falls roughly by b while the k x k
// (or Schur) factorization is charged once per responder set instead of
// once per request.
//
// Clock semantics: the serve loop keeps its own wall clock (dispatch =
// max(server free, head-of-queue arrival); completion = dispatch + round
// latency), while the engine's private clock advances only by round
// latencies — idle gaps waiting for arrivals do not age the cluster's
// speed traces. This keeps every round's trace window a pure function of
// how many rounds ran before it, which is what makes the whole serve run
// reproducible bit-for-bit from ServeConfig alone.
//
// Determinism contract: arrivals, tenants, request vectors, traces, and
// the operator all derive from ServeConfig::seed (salted independently of
// the scenario matrix, so the pinned sweep goldens are untouched);
// run_serve(config) is a pure function of config, and run_serve_sweep
// shards cells across threads into preallocated slots, so results are
// byte-identical at any --jobs.
//
// Consumers: tests/serve_test.cpp, bench/bench_serve.cpp,
// examples/scenario_cli.cpp --serve.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/coding/decode_context.h"
#include "src/harness/scenario_matrix.h"

namespace s2c2::harness {

struct ServeConfig {
  /// Display label for benches/CLI tables (not hashed).
  std::string label;

  /// Any registered strategy. Strategies without block-round support (the
  /// bilinear polynomial family) still serve, but degrade to width-1
  /// rounds — coalescing needs run_round_block(X, b > 1).
  StrategyKind strategy = StrategyKind::kS2C2;
  TraceProfile trace = TraceProfile::kStableCloud;

  std::size_t workers = 12;
  std::size_t k = 0;  // MDS parameter; 0 = workers - 2
  std::size_t stragglers = 2;  // controlled profile only
  std::size_t chunks_per_partition = 24;

  /// Open-loop arrival stream.
  std::size_t requests = 64;
  std::size_t tenants = 4;
  /// Mean arrivals per simulated second. 0 auto-calibrates from a probe
  /// round on a fresh engine: rate = load_factor / probe_latency, i.e.
  /// load_factor requests arrive per round-duration on average — > 1
  /// builds queues and exercises coalescing.
  double arrival_rate = 0.0;
  double load_factor = 4.0;

  /// Coalescing cap: a dispatch takes at most this many waiting requests.
  std::size_t max_batch = 16;
  /// Admission deadline relative to arrival; a request still queued this
  /// long past its arrival is rejected at dispatch time. 0 disables.
  double deadline = 0.0;

  /// Functional mode builds a real dense operator and verifies every
  /// returned product column against the direct matvec; cost-only mode
  /// serves latency-only block rounds at paper scale.
  bool functional = true;
  /// Operator shape; 0 derives a small functional default (the
  /// amortization bench passes tiny rows explicitly so factorization
  /// flops dominate solve flops).
  std::size_t op_rows = 0;
  std::size_t op_cols = 0;

  std::uint64_t seed = 42;

  /// Intra-round parallelism for the serving engine (forwarded to
  /// core::EngineParams::inner_jobs): the coalesced block round's kernels,
  /// per-chunk products, and decode groups fan out over an inner pool.
  /// 1 = serial (default), 0 = hardware threads. Not hashed — the
  /// fingerprint is bitwise-invariant across inner_jobs by construction.
  std::size_t inner_jobs = 1;

  [[nodiscard]] std::size_t effective_k() const {
    return k != 0 ? k : (workers >= 3 ? workers - 2 : workers);
  }
};

/// One request's life: arrival (open-loop), dispatch (admitted into a
/// coalesced round), completion (dispatch + round latency), or rejection
/// (deadline passed while queued; width/round stay 0).
struct RequestOutcome {
  std::size_t id = 0;
  std::size_t tenant = 0;
  double arrival = 0.0;
  double dispatch = 0.0;
  double completion = 0.0;
  std::size_t round = 0;  // index of the coalesced round it rode in
  std::size_t width = 0;  // that round's batch width
  bool rejected = false;

  [[nodiscard]] double latency() const { return completion - arrival; }
};

struct ServeResult {
  ServeConfig config;
  std::vector<RequestOutcome> outcomes;  // by request id

  std::size_t rounds = 0;     // coalesced block rounds dispatched
  std::size_t completed = 0;
  std::size_t rejected = 0;
  double realized_rate = 0.0;  // arrivals/s actually used (post-probe)
  double makespan = 0.0;       // last completion time
  double mean_latency = 0.0;   // completed requests only
  double p50_latency = 0.0;
  double p99_latency = 0.0;
  double jobs_per_sec = 0.0;   // completed / makespan

  /// Functional verification: max |served column - direct matvec| over
  /// every product the strategy returned (0 when cost-only or the
  /// strategy returns no product).
  double max_error = 0.0;
  std::size_t products_verified = 0;

  /// Decode-cache telemetry across the whole serve run — coalesced
  /// rounds hitting the cache is the amortization story the bench bars.
  coding::DecodeContextStats decode;

  /// FNV-1a over every outcome's exact bits + decode counters; the
  /// determinism handle (same config => same fingerprint, at any --jobs).
  [[nodiscard]] std::string fingerprint() const;
};

/// Serves config.requests through one engine. Pure in config. Throws
/// std::runtime_error on unrecoverable cluster failure (e.g. an uncoded
/// strategy on the byzantine profile).
[[nodiscard]] ServeResult run_serve(const ServeConfig& config);

/// Runs independent serve cells across `jobs` threads (0 = hardware).
/// Slot i is run_serve(cells[i]) bit-for-bit regardless of thread count.
[[nodiscard]] std::vector<ServeResult> run_serve_sweep(
    std::span<const ServeConfig> cells, std::size_t jobs);

/// Nearest-rank percentile (q in [0, 1]) of an unsorted sample; 0 when
/// empty. Exposed for the bench/CLI summary tables.
[[nodiscard]] double percentile(std::vector<double> sample, double q);

}  // namespace s2c2::harness
