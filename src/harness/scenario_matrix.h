// Deterministic cross-engine scenario matrix (the repo's comparison rig).
//
// The paper's evaluation is a grid: straggler-mitigation strategy x
// workload x cluster condition. This harness operationalizes that grid as
// a single sweep — {S2C2, replication+LATE, polynomial coding,
// over-decomposition} x {logistic regression, PageRank, SVM, Hessian} x
// {speed-trace profiles} — under one fixed RNG seed, so every cell is
// reproducible bit-for-bit and regressions in any engine/workload pair are
// caught by diffing fingerprints.
//
// Consumers (the first three through src/harness/matrix_runner.h, the
// parallel executor that adds the cluster-scale and predictor axes):
//   * tests/scenario_matrix_test.cpp — cross-engine invariants
//     (decodability, exact-k coverage, S2C2 waste <= replication waste);
//   * bench/bench_scenario_matrix.cpp — the paper-scale latency table;
//   * examples/scenario_cli.cpp --matrix — the user-facing sweep;
//   * src/harness/job_driver.h — reuses the trace/cluster/predictor
//     column machinery (trace_salt, make_cluster, make_column_predictor)
//     so job-level and round-level comparisons share one clock and fleet.
//
// Determinism contract: every stochastic choice (traces, placement,
// operators, predictor training) derives from ScenarioConfig::seed mixed
// with the cell's coordinates, so run_cell(config, ...) is a pure function
// of its arguments and run_scenario_matrix(config) ==
// run_scenario_matrix(config) exactly — the property the parallel runner
// leans on to shard cells across threads without changing a single bit.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/core/strategy_config.h"
#include "src/predict/lstm.h"
#include "src/predict/predictors.h"
#include "src/sim/speed_trace.h"

namespace s2c2::harness {

/// The harness sweeps strategies by their core::StrategyKind (the unified
/// taxonomy in src/core/strategy_config.h — the pre-PR-5 EngineKind enum
/// is gone). The matrix's engine axis is the four paper families returned
/// by all_engines(): kS2C2, kReplication, kPoly, kOverDecomp.
using StrategyKind = core::StrategyKind;

enum class WorkloadKind {
  kLogisticRegression,  // tall dense operator (X and Xᵀ products, §6.3)
  kPageRank,            // square link-matrix power iteration (§6.3)
  kSvm,                 // hinge-loss training shape (§7.2)
  kHessian,             // bilinear Aᵀ·diag(x)·A (§5, poly's home turf)
};

enum class TraceProfile {
  kControlledStragglers,  // fixed 5x-slow nodes (§6.5/§7.1 cluster)
  kStableCloud,           // low-volatility cloud regime (Fig 8)
  kVolatileCloud,         // frequent regime switches (Fig 10)
  kFailureInjection,      // workers dying mid-round (§4.3 recovery / kNever)
  // Robustness profiles (the PR 6 trace zoo). Appended after the original
  // four — enum values feed seeds and fingerprints, so the order above is
  // wire format. all_trace_profiles() still returns only the original
  // four (the golden-pinned default sweep); these live in
  // robustness_trace_profiles() / extended_trace_profiles().
  kFailSlow,          // monotone degradation toward a floor (health drift)
  kBurstyColocation,  // short deep co-tenant bursts, fast recovery
  kDiurnal,           // per-node periodic contention, quiet baseline
  kByzantine,         // corrupted products from <= n-k-1 workers
};

/// Speed-information source for the prediction-capable engines (the S2C2,
/// poly, and over-decomposition engines; replication ignores it). Oracle
/// reads the true trace speed at round start; the rest are the paper's
/// §6.1 predictor lineup trained on a per-column seeded corpus.
enum class PredictorKind {
  kOracle,
  kLastValue,
  kArima,  // ARIMA(1,0,1) fit by conditional sum of squares
  kLstm,   // the paper's 4-hidden-unit LSTM, trained in-cell
};

// Strategy naming/parsing lives in core (core::strategy_name /
// core::parse_strategy); the helpers below cover the harness-local axes.
[[nodiscard]] const char* workload_name(WorkloadKind w);
[[nodiscard]] const char* trace_profile_name(TraceProfile t);
[[nodiscard]] const char* predictor_name(PredictorKind p);

/// The matrix's engine axis: the four paper strategy families. Prediction
/// use (core::strategy_uses_predictions) decides which of them the
/// predictor axis multiplies; the others run once per column. This list
/// drives the default sweep whose fingerprints are golden-pinned, so it
/// must never grow — new kinds live in extended_engines().
[[nodiscard]] std::vector<StrategyKind> all_engines();
/// Every kind the matrix can run as a cell: the four paper families plus
/// the registry additions (s2c2-basic, mds, poly-conventional, lt, agc).
/// CLI parsing and the conformance suite iterate this list.
[[nodiscard]] std::vector<StrategyKind> extended_engines();
/// Wire-format axis id of a matrix engine — feeds cell seeds and cell
/// fingerprints. The legacy four are pinned at 0..3 by the PR 5 golden
/// fingerprints; later kinds append new ids and NEVER renumber old ones.
[[nodiscard]] std::uint64_t engine_axis_id(StrategyKind e);
[[nodiscard]] std::vector<WorkloadKind> all_workloads();
/// The original four profiles only — this list drives the default sweep
/// whose fingerprints are golden-pinned, so it must never grow.
[[nodiscard]] std::vector<TraceProfile> all_trace_profiles();
/// The PR 6 robustness additions (fail-slow, bursty, diurnal, byzantine).
[[nodiscard]] std::vector<TraceProfile> robustness_trace_profiles();
/// Original four + robustness profiles, in enum order (CLI parsing).
[[nodiscard]] std::vector<TraceProfile> extended_trace_profiles();
/// True for the robustness profiles. Cells on these profiles hash their
/// robustness counters (and may run health-informed prediction); cells on
/// the original profiles keep the pinned PR 5 fingerprints bit-for-bit.
[[nodiscard]] bool trace_profile_is_robustness(TraceProfile t);
[[nodiscard]] std::vector<PredictorKind> all_predictors();

/// A speed source built for one (workload, trace) column. `predictor` is
/// null for PredictorKind::kOracle (engines then read the true trace speed
/// via their oracle flag); the learned predictors are trained per column
/// from the config seed, memoized on the training salt, so every engine —
/// and every consumer (matrix cells, job driver) — in a column forecasts
/// from an identically-trained model. The LstmPredictor adapter holds a
/// reference into `lstm`, so the bundle must outlive the engine it feeds.
struct ColumnPredictor {
  std::unique_ptr<predict::SpeedPredictor> predictor;  // null for oracle
  std::shared_ptr<const predict::Lstm> lstm;           // keeps model alive
  [[nodiscard]] bool oracle() const { return predictor == nullptr; }
};

struct ScenarioConfig {
  std::size_t workers = 12;
  std::size_t k = 0;  // MDS parameter; 0 = workers - 2
  std::size_t stragglers = 2;  // controlled profile only
  std::size_t chunks_per_partition = 24;
  std::size_t rounds = 6;
  std::uint64_t seed = 42;

  /// Speed source for prediction-capable engines. Non-oracle predictors are
  /// trained/seeded per (seed, workload, profile) column, so every engine in
  /// a column forecasts from the same model.
  PredictorKind predictor = PredictorKind::kOracle;

  /// Functional mode runs real (small) operators through the engines;
  /// cells with a decode — the S2C2 engine everywhere, the poly engine on
  /// the Hessian workload — verify it against the uncoded reference
  /// (decode_checked / max_decode_error). The uncoded baselines have
  /// nothing to decode and stay latency-shape-only at functional scale.
  /// Cost-only mode simulates latency shapes at paper scale.
  bool functional = false;

  /// Multiplies cost-only operator rows (scale-up studies).
  double scale = 1.0;

  /// Intra-round (per-engine) parallelism, forwarded to
  /// core::EngineParams::inner_jobs: 1 (default) keeps the serial,
  /// allocation-free round loop; N >= 2 fans each cell's kernels, chunk
  /// products, and decode groups over an N-way engine-owned pool; 0 uses
  /// every hardware thread. Bitwise-invariant: every cell fingerprint is
  /// identical at any inner_jobs, and it composes with the matrix
  /// runner's outer --jobs sharding (nested parallel_for falls back
  /// serial inside pool workers, so threads never multiply).
  std::size_t inner_jobs = 1;

  [[nodiscard]] std::size_t effective_k() const {
    return k != 0 ? k : (workers >= 3 ? workers - 2 : workers);
  }
};

/// Operator geometry of one workload cell. `a_blocks` only matters for the
/// polynomial engine (d_cols is always divisible by it).
struct WorkloadShape {
  std::size_t rows = 0;
  std::size_t cols = 0;
  std::size_t a_blocks = 3;
  bool sparse = false;  // PageRank's link matrix
};

[[nodiscard]] WorkloadShape workload_shape(WorkloadKind w,
                                           const ScenarioConfig& config);

/// Deterministic per-cell seed: config.seed mixed with the coordinates.
/// Seeds cell-local randomness (operators, replica placement).
[[nodiscard]] std::uint64_t cell_seed(std::uint64_t seed, StrategyKind e,
                                      WorkloadKind w, TraceProfile t);

/// Trace salt for a (workload, profile) column — deliberately independent
/// of the engine, so every engine in a column runs on the *same* realized
/// cluster traces and cross-engine comparisons are apples-to-apples.
[[nodiscard]] std::uint64_t trace_salt(std::uint64_t seed, WorkloadKind w,
                                       TraceProfile t);

/// The cluster traces a cell runs on, reproducible from (config, profile,
/// salt). Exposed so tests can assert allocation invariants against the
/// exact speeds the engines saw.
[[nodiscard]] std::vector<sim::SpeedTrace> make_traces(
    TraceProfile profile, const ScenarioConfig& config, std::uint64_t salt);

/// Cluster spec for a cell: traces + network/flops calibrated to the
/// workload scale (functional cells run on a proportionally slower fleet so
/// network latency does not swamp the tiny operators).
[[nodiscard]] core::ClusterSpec make_cluster(TraceProfile profile,
                                             const ScenarioConfig& config,
                                             std::uint64_t salt);

/// Builds config.predictor for the (w, t) column, sized to config.workers.
/// Pure in its arguments (training is seeded + memoized per column), so
/// concurrent callers at any thread count get byte-identical forecasts.
[[nodiscard]] ColumnPredictor make_column_predictor(
    const ScenarioConfig& config, WorkloadKind w, TraceProfile t);

struct CellResult {
  StrategyKind engine{};
  WorkloadKind workload{};
  TraceProfile trace{};
  std::size_t workers = 0;  // cluster size the cell ran at
  PredictorKind predictor = PredictorKind::kOracle;

  /// Engine threw (e.g. an unrecoverable cluster failure under the
  /// failure-injection profile). Deterministic: the same config fails the
  /// same way, and `error` participates in the fingerprint.
  bool failed = false;
  std::string error;

  std::size_t rounds = 0;
  double total_latency = 0.0;
  double mean_latency = 0.0;
  double timeout_rate = 0.0;

  // Waste accounting (sim/accounting.h).
  double total_useful = 0.0;
  double total_wasted = 0.0;
  double mean_wasted_fraction = 0.0;

  // Functional-mode decode verification.
  bool decode_checked = false;
  double max_decode_error = 0.0;

  // Robustness telemetry (sim::RoundStats), summed over rounds except for
  // degrading_workers (the final round's health-monitor flag count).
  // Hashed into the fingerprint only on robustness profiles, so the
  // original profiles' goldens are untouched.
  std::size_t byzantine_detected = 0;
  std::size_t corrupted_chunks = 0;
  std::size_t degrading_workers = 0;

  /// Per-round latencies — the cell's event log; fingerprint() hashes the
  /// exact bit patterns, so "same seed => identical log" is testable.
  std::vector<double> round_latencies;

  [[nodiscard]] std::string fingerprint() const;
};

struct MatrixResult {
  ScenarioConfig config;
  std::vector<CellResult> cells;

  /// nullptr when the cell was not part of the sweep. The three-coordinate
  /// form returns the first match over the runner's extra axes.
  [[nodiscard]] const CellResult* find(StrategyKind e, WorkloadKind w,
                                       TraceProfile t) const;
  [[nodiscard]] const CellResult* find(StrategyKind e, WorkloadKind w,
                                       TraceProfile t, std::size_t workers,
                                       PredictorKind p) const;

  /// Hash over every cell fingerprint (whole-sweep determinism check).
  [[nodiscard]] std::string fingerprint() const;
};

/// Runs a single cell.
[[nodiscard]] CellResult run_cell(const ScenarioConfig& config,
                                  StrategyKind e, WorkloadKind w,
                                  TraceProfile t);

/// Sweeps the cross product of the given axes.
[[nodiscard]] MatrixResult run_scenario_matrix(
    const ScenarioConfig& config, std::span<const StrategyKind> engines,
    std::span<const WorkloadKind> workloads,
    std::span<const TraceProfile> traces);

/// Full 4 x 4 x 3 sweep.
[[nodiscard]] MatrixResult run_scenario_matrix(const ScenarioConfig& config);

}  // namespace s2c2::harness
