#include "src/telemetry/health_monitor.h"

#include <algorithm>

#include "src/util/require.h"

namespace s2c2::telemetry {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

HealthMonitor::HealthMonitor(std::size_t num_workers,
                             HealthMonitorConfig config)
    : config_(config), workers_(num_workers) {
  S2C2_REQUIRE(config_.fast_alpha > 0.0 && config_.fast_alpha <= 1.0,
               "fast_alpha in (0,1]");
  S2C2_REQUIRE(config_.slow_alpha > 0.0 && config_.slow_alpha <= 1.0,
               "slow_alpha in (0,1]");
  S2C2_REQUIRE(config_.min_pulses >= 1, "min_pulses >= 1");
}

void HealthMonitor::record_pulse(std::size_t worker, double speed) {
  S2C2_REQUIRE(worker < workers_.size(), "worker out of range");
  S2C2_REQUIRE(speed >= 0.0, "speed must be >= 0");
  WorkerHealth& h = workers_[worker];
  if (h.pulses == 0) {
    h.ewma_fast = speed;
    h.ewma_slow = speed;
    h.drift = 0.0;
  } else {
    const double prev_fast = h.ewma_fast;
    h.ewma_fast += config_.fast_alpha * (speed - h.ewma_fast);
    h.ewma_slow += config_.slow_alpha * (speed - h.ewma_slow);
    h.drift += config_.drift_alpha * ((h.ewma_fast - prev_fast) - h.drift);
  }
  ++h.pulses;
  h.degrading =
      h.pulses >= config_.min_pulses &&
      h.ewma_fast < h.ewma_slow * (1.0 - config_.drift_threshold);
  // Extrapolate the fast baseline to the failure floor at the smoothed
  // drift rate; a flat or improving worker never projects a failure.
  if (h.degrading && h.drift < 0.0 && h.ewma_fast > config_.failure_floor) {
    h.time_to_failure = (h.ewma_fast - config_.failure_floor) / (-h.drift);
  } else if (h.ewma_fast <= config_.failure_floor &&
             h.pulses >= config_.min_pulses) {
    h.time_to_failure = 0.0;
  } else {
    h.time_to_failure = kInf;
  }
}

void HealthMonitor::record_missed(std::size_t worker) {
  S2C2_REQUIRE(worker < workers_.size(), "worker out of range");
  ++workers_[worker].missed_pulses;
}

const WorkerHealth& HealthMonitor::health(std::size_t worker) const {
  S2C2_REQUIRE(worker < workers_.size(), "worker out of range");
  return workers_[worker];
}

std::size_t HealthMonitor::degrading_count() const {
  std::size_t n = 0;
  for (const WorkerHealth& h : workers_) n += h.degrading ? 1 : 0;
  return n;
}

double HealthMonitor::min_time_to_failure() const {
  double ttf = kInf;
  for (const WorkerHealth& h : workers_) {
    ttf = std::min(ttf, h.time_to_failure);
  }
  return ttf;
}

double HealthMonitor::prediction_scale(std::size_t worker) const {
  S2C2_REQUIRE(worker < workers_.size(), "worker out of range");
  const WorkerHealth& h = workers_[worker];
  if (!h.degrading || h.ewma_slow <= 0.0) return 1.0;
  return std::clamp(h.ewma_fast / h.ewma_slow, 0.25, 1.0);
}

}  // namespace s2c2::telemetry
