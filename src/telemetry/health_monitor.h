// Per-worker health telemetry: liveness pulses, EWMA speed baselines,
// drift detection, and time-to-failure extrapolation.
//
// The monitor is a passive sink: `core::RoundExecutor` feeds it one pulse
// per worker per round (the worker's execution-window speed, with recovery
// windows *included* so reassignment overlap cannot inflate the baseline —
// see the satellite fix note in round_executor.cpp), or a missed pulse when
// the worker never responded. From the pulse stream it maintains, per
// worker:
//
//  * a fast and a slow EWMA of observed speed (short- vs long-horizon
//    baseline);
//  * a drift estimate (EWMA of the fast baseline's per-round delta) — a
//    persistently negative drift is the fail-slow signature;
//  * a time-to-failure estimate: rounds until the fast baseline crosses
//    `failure_floor` at the current drift rate (+inf when not declining);
//  * a `degrading` flag once the fast baseline sits `drift_threshold`
//    below the slow baseline with enough pulses to trust it.
//
// Consumers: `predict::HealthInformedPredictor` scales an inner
// predictor's estimates by `prediction_scale(worker)` (degrading workers
// are bid down before the trace itself confirms the decline), and the
// harness surfaces `degrading_count()` / `min_time_to_failure()` in
// `RoundStats` / `JobResult` / the report CSVs. Everything here is
// deterministic: no clocks, no RNG — pure functions of the pulse stream.
#pragma once

#include <cstddef>
#include <limits>
#include <vector>

namespace s2c2::telemetry {

struct HealthMonitorConfig {
  double fast_alpha = 0.4;       // short-horizon EWMA weight
  double slow_alpha = 0.08;      // long-horizon baseline weight
  double drift_alpha = 0.3;      // smoothing on the per-round fast delta
  double drift_threshold = 0.05; // relative fast-below-slow to flag degrading
  double failure_floor = 0.1;    // speed at which a worker counts as failed
  std::size_t min_pulses = 3;    // pulses before the flags are trusted
};

struct WorkerHealth {
  double ewma_fast = 1.0;
  double ewma_slow = 1.0;
  double drift = 0.0;  // smoothed per-round change of the fast baseline
  double time_to_failure =
      std::numeric_limits<double>::infinity();  // rounds, +inf if healthy
  std::size_t pulses = 0;
  std::size_t missed_pulses = 0;
  bool degrading = false;
};

class HealthMonitor {
 public:
  explicit HealthMonitor(std::size_t num_workers,
                         HealthMonitorConfig config = {});

  /// One responded-worker sample: the worker's execution-window speed for
  /// the round (work done over the full busy window, recovery included).
  void record_pulse(std::size_t worker, double speed);

  /// The worker produced no response this round (dead or cancelled before
  /// any work landed). Counts against liveness; baselines are untouched.
  void record_missed(std::size_t worker);

  [[nodiscard]] const WorkerHealth& health(std::size_t worker) const;
  [[nodiscard]] std::size_t num_workers() const noexcept {
    return workers_.size();
  }

  /// Workers currently flagged as degrading.
  [[nodiscard]] std::size_t degrading_count() const;

  /// Smallest time-to-failure estimate across the fleet (+inf when nobody
  /// is projected to fail).
  [[nodiscard]] double min_time_to_failure() const;

  /// Multiplier in (0, 1] for a predictor's speed estimate: 1 for healthy
  /// workers, the fast/slow baseline ratio (clamped below) for degrading
  /// ones — the health-informed prediction hook.
  [[nodiscard]] double prediction_scale(std::size_t worker) const;

 private:
  HealthMonitorConfig config_;
  std::vector<WorkerHealth> workers_;
};

}  // namespace s2c2::telemetry
