// Partial-pivot LU factorization. O(n³) to factor (2/3·n³ flops), O(n²)
// per right-hand-side solve.
//
// Role in decode: the general dense fallback. The decode subsystem
// (coding/decode_context.h) Schur-reduces MDS recovery systems onto their
// p x p parity block and LU-factorizes only that — p <= n - k, so at
// fleet scale this class factors 2 x 2 systems, not k x k ones — and
// caches the result per responder set. Pure Vandermonde systems skip LU
// entirely (linalg/vandermonde.h). Cost model: docs/PERFORMANCE.md.
#pragma once

#include <cstddef>
#include <span>

#include "src/linalg/matrix.h"

namespace s2c2::linalg {

class LuFactorization {
 public:
  /// Factors a square matrix. Throws std::invalid_argument if `a` is not
  /// square and std::domain_error if it is numerically singular.
  explicit LuFactorization(Matrix a);

  [[nodiscard]] std::size_t dim() const noexcept { return lu_.rows(); }

  /// Solves A x = b for a single right-hand side.
  [[nodiscard]] Vector solve(std::span<const double> b) const;

  /// Solves A X = B column-block-wise: B is n x m, returns n x m.
  [[nodiscard]] Matrix solve_matrix(const Matrix& b) const;

  /// In-place variant over a row-major RHS laid out as n rows of width m.
  /// Reuses an internal permutation scratch, so steady-state calls are
  /// allocation-free — but NOT safe to call concurrently on one instance
  /// (the serial decode path; see tests/arena_test.cpp).
  void solve_inplace(std::span<double> b_rowmajor, std::size_t width) const;

  /// Concurrency-safe variant: identical bits, but the permutation gather
  /// runs through the caller-owned `perm_scratch` (resized as needed), so
  /// any number of threads may solve against one shared factorization as
  /// long as each brings its own scratch — the parallel decode path.
  void solve_inplace(std::span<double> b_rowmajor, std::size_t width,
                     std::vector<double>& perm_scratch) const;

  /// Crude reciprocal-condition signal: min |U_ii| / max |U_ii|.
  [[nodiscard]] double rcond_estimate() const noexcept { return rcond_; }

 private:
  Matrix lu_;                     // packed L (unit diag) and U
  std::vector<std::size_t> piv_;  // row permutation
  double rcond_ = 0.0;
  // Retained across solve_inplace calls (resize keeps capacity) so the
  // row-permutation gather never heap-allocates in steady state.
  mutable std::vector<double> perm_scratch_;
};

}  // namespace s2c2::linalg
