// Partial-pivot LU factorization.
//
// The decoder solves one k x k system per distinct responder set each round
// (see coding/chunked_decoder.h); factors are computed once and reused for
// every chunk and every right-hand side, so the factorization object owns
// its pivots and exposes repeated solves.
#pragma once

#include <cstddef>
#include <span>

#include "src/linalg/matrix.h"

namespace s2c2::linalg {

class LuFactorization {
 public:
  /// Factors a square matrix. Throws std::invalid_argument if `a` is not
  /// square and std::domain_error if it is numerically singular.
  explicit LuFactorization(Matrix a);

  [[nodiscard]] std::size_t dim() const noexcept { return lu_.rows(); }

  /// Solves A x = b for a single right-hand side.
  [[nodiscard]] Vector solve(std::span<const double> b) const;

  /// Solves A X = B column-block-wise: B is n x m, returns n x m.
  [[nodiscard]] Matrix solve_matrix(const Matrix& b) const;

  /// In-place variant over a row-major RHS laid out as n rows of width m.
  void solve_inplace(std::span<double> b_rowmajor, std::size_t width) const;

  /// Crude reciprocal-condition signal: min |U_ii| / max |U_ii|.
  [[nodiscard]] double rcond_estimate() const noexcept { return rcond_; }

 private:
  Matrix lu_;                     // packed L (unit diag) and U
  std::vector<std::size_t> piv_;  // row permutation
  double rcond_ = 0.0;
};

}  // namespace s2c2::linalg
