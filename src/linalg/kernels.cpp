#include "src/linalg/kernels.h"

#include <algorithm>

#include "src/util/thread_pool.h"

#if defined(_OPENMP)
#include <omp.h>
#endif

namespace s2c2::linalg::kernels {

namespace {

// Minimum multiply count before the optional OpenMP row split engages;
// below it thread fan-out costs more than the kernel.
[[maybe_unused]] constexpr std::size_t kOmpMinWork = 1u << 16;

// One dense matvec row tile: kMatvecRowTile independent accumulator
// chains share each x[c] load; every chain is the naive ascending-c sum.
inline void matvec_rows4(const double* S2C2_RESTRICT a, std::size_t cols,
                         const double* S2C2_RESTRICT x,
                         double* S2C2_RESTRICT y) {
  const double* S2C2_RESTRICT a0 = a;
  const double* S2C2_RESTRICT a1 = a + cols;
  const double* S2C2_RESTRICT a2 = a + 2 * cols;
  const double* S2C2_RESTRICT a3 = a + 3 * cols;
  double acc0 = 0.0, acc1 = 0.0, acc2 = 0.0, acc3 = 0.0;
  for (std::size_t c = 0; c < cols; ++c) {
    const double xc = x[c];
    acc0 += a0[c] * xc;
    acc1 += a1[c] * xc;
    acc2 += a2[c] * xc;
    acc3 += a3[c] * xc;
  }
  y[0] = acc0;
  y[1] = acc1;
  y[2] = acc2;
  y[3] = acc3;
}

inline void matvec_rows_tail(const double* S2C2_RESTRICT a, std::size_t rows,
                             std::size_t cols, const double* S2C2_RESTRICT x,
                             double* S2C2_RESTRICT y) {
  for (std::size_t r = 0; r < rows; ++r) {
    const double* S2C2_RESTRICT row = a + r * cols;
    double acc = 0.0;
    for (std::size_t c = 0; c < cols; ++c) acc += row[c] * x[c];
    y[r] = acc;
  }
}

inline void dense_matvec_range(const double* S2C2_RESTRICT a, std::size_t r0,
                               std::size_t r1, std::size_t cols,
                               const double* S2C2_RESTRICT x,
                               double* S2C2_RESTRICT y) {
  std::size_t r = r0;
  for (; r + kMatvecRowTile <= r1; r += kMatvecRowTile) {
    matvec_rows4(a + r * cols, cols, x, y + r);
  }
  matvec_rows_tail(a + r * cols, r1 - r, cols, x, y + r);
}

// One (row pair) x (8 RHS columns) matmat tile: a single ascending-c
// pass over both rows, 16 accumulators. The column tile is contiguous in
// the row-major panel, so the inner fixed-length loops vectorize across
// RHS columns; each accumulator chain is still the naive ascending-c sum
// for its output element.
template <std::size_t W>
inline void matmat_rows2_tile(const double* S2C2_RESTRICT a0,
                              const double* S2C2_RESTRICT a1,
                              std::size_t cols, const double* S2C2_RESTRICT x,
                              std::size_t width, double* S2C2_RESTRICT y0,
                              double* S2C2_RESTRICT y1) {
  double acc0[W] = {};
  double acc1[W] = {};
  for (std::size_t c = 0; c < cols; ++c) {
    const double* S2C2_RESTRICT xc = x + c * width;
    const double a0c = a0[c];
    const double a1c = a1[c];
    for (std::size_t j = 0; j < W; ++j) acc0[j] += a0c * xc[j];
    for (std::size_t j = 0; j < W; ++j) acc1[j] += a1c * xc[j];
  }
  for (std::size_t j = 0; j < W; ++j) y0[j] = acc0[j];
  for (std::size_t j = 0; j < W; ++j) y1[j] = acc1[j];
}

template <std::size_t W>
inline void matmat_row1_tile(const double* S2C2_RESTRICT a0, std::size_t cols,
                             const double* S2C2_RESTRICT x, std::size_t width,
                             double* S2C2_RESTRICT y0) {
  double acc0[W] = {};
  for (std::size_t c = 0; c < cols; ++c) {
    const double* S2C2_RESTRICT xc = x + c * width;
    const double a0c = a0[c];
    for (std::size_t j = 0; j < W; ++j) acc0[j] += a0c * xc[j];
  }
  for (std::size_t j = 0; j < W; ++j) y0[j] = acc0[j];
}

// Ragged column tail (width % kMatmatColTile): variable-length inner
// loop, same chains.
inline void matmat_row1_tail(const double* S2C2_RESTRICT a0, std::size_t cols,
                             const double* S2C2_RESTRICT x, std::size_t width,
                             std::size_t jw, double* S2C2_RESTRICT y0) {
  double acc[kMatmatColTile] = {};
  for (std::size_t c = 0; c < cols; ++c) {
    const double* S2C2_RESTRICT xc = x + c * width;
    const double a0c = a0[c];
    for (std::size_t j = 0; j < jw; ++j) acc[j] += a0c * xc[j];
  }
  for (std::size_t j = 0; j < jw; ++j) y0[j] = acc[j];
}

inline void dense_matmat_range(const double* S2C2_RESTRICT a, std::size_t r0,
                               std::size_t r1, std::size_t cols,
                               const double* S2C2_RESTRICT x,
                               std::size_t width, double* S2C2_RESTRICT y) {
  std::size_t r = r0;
  for (; r + kMatmatRowTile <= r1; r += kMatmatRowTile) {
    const double* S2C2_RESTRICT a0 = a + r * cols;
    const double* S2C2_RESTRICT a1 = a0 + cols;
    double* S2C2_RESTRICT y0 = y + r * width;
    double* S2C2_RESTRICT y1 = y0 + width;
    std::size_t j = 0;
    for (; j + kMatmatColTile <= width; j += kMatmatColTile) {
      matmat_rows2_tile<kMatmatColTile>(a0, a1, cols, x + j, width, y0 + j,
                                        y1 + j);
    }
    if (j < width) {
      matmat_row1_tail(a0, cols, x + j, width, width - j, y0 + j);
      matmat_row1_tail(a1, cols, x + j, width, width - j, y1 + j);
    }
  }
  for (; r < r1; ++r) {
    const double* S2C2_RESTRICT a0 = a + r * cols;
    double* S2C2_RESTRICT y0 = y + r * width;
    std::size_t j = 0;
    for (; j + kMatmatColTile <= width; j += kMatmatColTile) {
      matmat_row1_tile<kMatmatColTile>(a0, cols, x + j, width, y0 + j);
    }
    if (j < width) matmat_row1_tail(a0, cols, x + j, width, width - j, y0 + j);
  }
}

inline void csr_matvec_range(const std::size_t* S2C2_RESTRICT row_ptr,
                             std::size_t r0, std::size_t r1,
                             const std::size_t* S2C2_RESTRICT col_idx,
                             const double* S2C2_RESTRICT values,
                             const double* S2C2_RESTRICT x,
                             double* S2C2_RESTRICT y) {
  for (std::size_t r = r0; r < r1; ++r) {
    const std::size_t p0 = row_ptr[r];
    const std::size_t p1 = row_ptr[r + 1];
    double acc = 0.0;
    for (std::size_t p = p0; p < p1; ++p) acc += values[p] * x[col_idx[p]];
    y[r] = acc;
  }
}

// Tiled CSR panel rows: one pass over the row's nonzeros per column tile
// of 8 (instead of one pass per RHS column), gathers amortized across
// the tile; per-element chains stay in CSR storage order.
template <std::size_t W>
inline void csr_row_tile(std::size_t p0, std::size_t p1,
                         const std::size_t* S2C2_RESTRICT col_idx,
                         const double* S2C2_RESTRICT values,
                         const double* S2C2_RESTRICT x, std::size_t width,
                         double* S2C2_RESTRICT y) {
  double acc[W] = {};
  for (std::size_t p = p0; p < p1; ++p) {
    const double v = values[p];
    const double* S2C2_RESTRICT xc = x + col_idx[p] * width;
    for (std::size_t j = 0; j < W; ++j) acc[j] += v * xc[j];
  }
  for (std::size_t j = 0; j < W; ++j) y[j] = acc[j];
}

inline void csr_row_tail(std::size_t p0, std::size_t p1,
                         const std::size_t* S2C2_RESTRICT col_idx,
                         const double* S2C2_RESTRICT values,
                         const double* S2C2_RESTRICT x, std::size_t width,
                         std::size_t jw, double* S2C2_RESTRICT y) {
  double acc[kMatmatColTile] = {};
  for (std::size_t p = p0; p < p1; ++p) {
    const double v = values[p];
    const double* S2C2_RESTRICT xc = x + col_idx[p] * width;
    for (std::size_t j = 0; j < jw; ++j) acc[j] += v * xc[j];
  }
  for (std::size_t j = 0; j < jw; ++j) y[j] = acc[j];
}

inline void csr_matmat_range(const std::size_t* S2C2_RESTRICT row_ptr,
                             std::size_t r0, std::size_t r1,
                             const std::size_t* S2C2_RESTRICT col_idx,
                             const double* S2C2_RESTRICT values,
                             const double* S2C2_RESTRICT x, std::size_t width,
                             double* S2C2_RESTRICT y) {
  for (std::size_t r = r0; r < r1; ++r) {
    const std::size_t p0 = row_ptr[r];
    const std::size_t p1 = row_ptr[r + 1];
    double* S2C2_RESTRICT yr = y + r * width;
    std::size_t j = 0;
    for (; j + kMatmatColTile <= width; j += kMatmatColTile) {
      csr_row_tile<kMatmatColTile>(p0, p1, col_idx, values, x + j, width,
                                   yr + j);
    }
    if (j < width) {
      csr_row_tail(p0, p1, col_idx, values, x + j, width, width - j, yr + j);
    }
  }
}

// Splits [0, rows) into contiguous tile-aligned blocks, one per
// participating thread (pool workers + the caller), and runs `body(lo,
// hi)` on each via the help-first member parallel_for. Blocks are
// non-overlapping and cover every row exactly once, and each body call
// is one of the serial range helpers above — so the split never touches
// a per-element accumulation chain and the output bits match the serial
// kernel for any pool size. Serial when the pool is null, the multiply
// count is under kPoolMinWork, or only one block results.
template <typename Body>
void parallel_row_blocks(util::ThreadPool* pool, std::size_t rows,
                         std::size_t work, std::size_t tile,
                         const Body& body) {
  if (pool == nullptr || work < kPoolMinWork || rows <= tile) {
    body(0, rows);
    return;
  }
  const std::size_t tiles = (rows + tile - 1) / tile;
  const std::size_t parts = std::min(pool->size() + 1, tiles);
  if (parts <= 1) {
    body(0, rows);
    return;
  }
  pool->parallel_for(parts, [&](std::size_t p) {
    const std::size_t lo = tiles * p / parts * tile;
    const std::size_t hi =
        p + 1 == parts ? rows : std::min(tiles * (p + 1) / parts * tile, rows);
    if (lo < hi) body(lo, hi);
  });
}

}  // namespace

void dense_matvec(const double* S2C2_RESTRICT a, std::size_t rows,
                  std::size_t cols, const double* S2C2_RESTRICT x,
                  double* S2C2_RESTRICT y) {
#if defined(_OPENMP)
  if (rows * cols >= kOmpMinWork) {
    const std::ptrdiff_t n = static_cast<std::ptrdiff_t>(rows);
#pragma omp parallel
    {
      const int nt = omp_get_num_threads();
      const int id = omp_get_thread_num();
      const std::ptrdiff_t lo = n * id / nt;
      const std::ptrdiff_t hi = n * (id + 1) / nt;
      dense_matvec_range(a, static_cast<std::size_t>(lo),
                         static_cast<std::size_t>(hi), cols, x, y);
    }
    return;
  }
#endif
  dense_matvec_range(a, 0, rows, cols, x, y);
}

void dense_matmat(const double* S2C2_RESTRICT a, std::size_t rows,
                  std::size_t cols, const double* S2C2_RESTRICT x,
                  std::size_t width, double* S2C2_RESTRICT y) {
#if defined(_OPENMP)
  if (rows * cols * width >= kOmpMinWork) {
    const std::ptrdiff_t n = static_cast<std::ptrdiff_t>(rows);
#pragma omp parallel
    {
      const int nt = omp_get_num_threads();
      const int id = omp_get_thread_num();
      const std::ptrdiff_t lo = n * id / nt;
      const std::ptrdiff_t hi = n * (id + 1) / nt;
      dense_matmat_range(a, static_cast<std::size_t>(lo),
                         static_cast<std::size_t>(hi), cols, x, width, y);
    }
    return;
  }
#endif
  dense_matmat_range(a, 0, rows, cols, x, width, y);
}

void csr_matvec(const std::size_t* S2C2_RESTRICT row_ptr, std::size_t rows,
                const std::size_t* S2C2_RESTRICT col_idx,
                const double* S2C2_RESTRICT values,
                const double* S2C2_RESTRICT x, double* S2C2_RESTRICT y) {
  csr_matvec_range(row_ptr, 0, rows, col_idx, values, x, y);
}

void csr_matmat(const std::size_t* S2C2_RESTRICT row_ptr, std::size_t rows,
                const std::size_t* S2C2_RESTRICT col_idx,
                const double* S2C2_RESTRICT values,
                const double* S2C2_RESTRICT x, std::size_t width,
                double* S2C2_RESTRICT y) {
  csr_matmat_range(row_ptr, 0, rows, col_idx, values, x, width, y);
}

void dense_matvec(const double* a, std::size_t rows, std::size_t cols,
                  const double* x, double* y, util::ThreadPool* pool) {
  parallel_row_blocks(pool, rows, rows * cols, kMatvecRowTile,
                      [&](std::size_t lo, std::size_t hi) {
                        dense_matvec_range(a, lo, hi, cols, x, y);
                      });
}

void dense_matmat(const double* a, std::size_t rows, std::size_t cols,
                  const double* x, std::size_t width, double* y,
                  util::ThreadPool* pool) {
  parallel_row_blocks(pool, rows, rows * cols * width, kMatmatRowTile,
                      [&](std::size_t lo, std::size_t hi) {
                        dense_matmat_range(a, lo, hi, cols, x, width, y);
                      });
}

void csr_matvec(const std::size_t* row_ptr, std::size_t rows,
                const std::size_t* col_idx, const double* values,
                const double* x, double* y, util::ThreadPool* pool) {
  const std::size_t nnz = rows == 0 ? 0 : row_ptr[rows] - row_ptr[0];
  parallel_row_blocks(pool, rows, nnz, 1,
                      [&](std::size_t lo, std::size_t hi) {
                        csr_matvec_range(row_ptr, lo, hi, col_idx, values, x,
                                         y);
                      });
}

void csr_matmat(const std::size_t* row_ptr, std::size_t rows,
                const std::size_t* col_idx, const double* values,
                const double* x, std::size_t width, double* y,
                util::ThreadPool* pool) {
  const std::size_t nnz = rows == 0 ? 0 : row_ptr[rows] - row_ptr[0];
  parallel_row_blocks(pool, rows, nnz * width, 1,
                      [&](std::size_t lo, std::size_t hi) {
                        csr_matmat_range(row_ptr, lo, hi, col_idx, values, x,
                                         width, y);
                      });
}

}  // namespace s2c2::linalg::kernels
