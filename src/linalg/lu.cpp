#include "src/linalg/lu.h"

#include <cmath>
#include <stdexcept>

#include "src/util/require.h"

namespace s2c2::linalg {

LuFactorization::LuFactorization(Matrix a) : lu_(std::move(a)) {
  S2C2_REQUIRE(lu_.rows() == lu_.cols(), "LU of non-square matrix");
  const std::size_t n = lu_.rows();
  piv_.resize(n);
  for (std::size_t i = 0; i < n; ++i) piv_[i] = i;

  double min_diag = 0.0;
  double max_diag = 0.0;
  for (std::size_t col = 0; col < n; ++col) {
    // Pivot search.
    std::size_t pivot = col;
    double best = std::abs(lu_(col, col));
    for (std::size_t r = col + 1; r < n; ++r) {
      const double v = std::abs(lu_(r, col));
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    if (best == 0.0) {
      throw std::domain_error("LU: matrix is numerically singular");
    }
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) {
        std::swap(lu_(col, c), lu_(pivot, c));
      }
      std::swap(piv_[col], piv_[pivot]);
    }
    const double d = lu_(col, col);
    if (col == 0) {
      min_diag = max_diag = std::abs(d);
    } else {
      min_diag = std::min(min_diag, std::abs(d));
      max_diag = std::max(max_diag, std::abs(d));
    }
    for (std::size_t r = col + 1; r < n; ++r) {
      const double mult = lu_(r, col) / d;
      lu_(r, col) = mult;
      if (mult == 0.0) continue;
      for (std::size_t c = col + 1; c < n; ++c) {
        lu_(r, c) -= mult * lu_(col, c);
      }
    }
  }
  rcond_ = max_diag > 0.0 ? min_diag / max_diag : 0.0;
}

Vector LuFactorization::solve(std::span<const double> b) const {
  const std::size_t n = dim();
  S2C2_REQUIRE(b.size() == n, "LU solve: rhs size mismatch");
  Vector x(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = b[piv_[i]];
  // Forward substitution (L has unit diagonal).
  for (std::size_t i = 1; i < n; ++i) {
    double acc = x[i];
    for (std::size_t j = 0; j < i; ++j) acc -= lu_(i, j) * x[j];
    x[i] = acc;
  }
  // Back substitution.
  for (std::size_t ii = n; ii-- > 0;) {
    double acc = x[ii];
    for (std::size_t j = ii + 1; j < n; ++j) acc -= lu_(ii, j) * x[j];
    x[ii] = acc / lu_(ii, ii);
  }
  return x;
}

Matrix LuFactorization::solve_matrix(const Matrix& b) const {
  const std::size_t n = dim();
  S2C2_REQUIRE(b.rows() == n, "LU solve_matrix: rhs rows mismatch");
  Matrix x = b;
  solve_inplace(x.mutable_data(), x.cols());
  return x;
}

void LuFactorization::solve_inplace(std::span<double> b_rowmajor,
                                    std::size_t width) const {
  solve_inplace(b_rowmajor, width, perm_scratch_);
}

void LuFactorization::solve_inplace(std::span<double> b_rowmajor,
                                    std::size_t width,
                                    std::vector<double>& perm_scratch) const {
  const std::size_t n = dim();
  S2C2_REQUIRE(width > 0 && b_rowmajor.size() == n * width,
               "LU solve_inplace: rhs layout mismatch");
  // Apply the row permutation (gather through the caller's scratch).
  perm_scratch.resize(b_rowmajor.size());
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t c = 0; c < width; ++c) {
      perm_scratch[i * width + c] = b_rowmajor[piv_[i] * width + c];
    }
  }
  std::copy(perm_scratch.begin(), perm_scratch.end(), b_rowmajor.begin());
  // Forward substitution over all columns at once.
  for (std::size_t i = 1; i < n; ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      const double lij = lu_(i, j);
      if (lij == 0.0) continue;
      for (std::size_t c = 0; c < width; ++c) {
        b_rowmajor[i * width + c] -= lij * b_rowmajor[j * width + c];
      }
    }
  }
  // Back substitution.
  for (std::size_t ii = n; ii-- > 0;) {
    for (std::size_t j = ii + 1; j < n; ++j) {
      const double uij = lu_(ii, j);
      if (uij == 0.0) continue;
      for (std::size_t c = 0; c < width; ++c) {
        b_rowmajor[ii * width + c] -= uij * b_rowmajor[j * width + c];
      }
    }
    const double d = lu_(ii, ii);
    for (std::size_t c = 0; c < width; ++c) b_rowmajor[ii * width + c] /= d;
  }
}

}  // namespace s2c2::linalg
