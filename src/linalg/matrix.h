// Dense row-major matrix and vector kernels.
//
// This is the BLAS substitute for the reproduction: the paper's workers run
// dgemv/dgemm on their encoded partitions; ours run Matrix::matvec /
// Matrix::matmul. Kernels are cache-blocked but deliberately simple — every
// figure in the paper reports *relative* latency, so kernel peak FLOP/s is
// irrelevant; correctness and a predictable cost model are what matter.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "src/util/rng.h"

namespace s2c2::linalg {

using Vector = std::vector<double>;

class Matrix {
 public:
  Matrix() = default;

  /// rows x cols, zero-initialized.
  Matrix(std::size_t rows, std::size_t cols);

  /// From row-major data; data.size() must equal rows*cols.
  Matrix(std::size_t rows, std::size_t cols, std::vector<double> data);

  static Matrix identity(std::size_t n);

  /// Entries i.i.d. uniform in [lo, hi).
  static Matrix random_uniform(std::size_t rows, std::size_t cols,
                               util::Rng& rng, double lo = -1.0,
                               double hi = 1.0);

  /// Entries i.i.d. N(0, stddev^2).
  static Matrix random_normal(std::size_t rows, std::size_t cols,
                              util::Rng& rng, double stddev = 1.0);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }

  double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  [[nodiscard]] std::span<double> row(std::size_t r) {
    return {data_.data() + r * cols_, cols_};
  }
  [[nodiscard]] std::span<const double> row(std::size_t r) const {
    return {data_.data() + r * cols_, cols_};
  }

  [[nodiscard]] std::span<const double> data() const noexcept { return data_; }
  [[nodiscard]] std::span<double> mutable_data() noexcept { return data_; }

  /// Reshape without zeroing: contents are unspecified afterwards, the
  /// caller must overwrite every element. Retains capacity, so the decode
  /// hot path can reuse one Matrix across rounds allocation-free.
  void resize(std::size_t rows, std::size_t cols) {
    rows_ = rows;
    cols_ = cols;
    data_.resize(rows * cols);
  }

  /// Copies rows [begin, end) into a new (end-begin) x cols matrix.
  [[nodiscard]] Matrix row_block(std::size_t begin, std::size_t end) const;

  /// y = this * x. x.size() must equal cols().
  [[nodiscard]] Vector matvec(std::span<const double> x) const;

  /// Writes this*x into y (y.size() == rows()); avoids allocation in loops.
  void matvec_into(std::span<const double> x, std::span<double> y) const;

  /// y = this^T * x  without materializing the transpose.
  [[nodiscard]] Vector matvec_transposed(std::span<const double> x) const;

  /// Y = this * X for a row-major multi-RHS panel X (cols() x b). Unlike
  /// matmul's blocked i-k-j loop, each output element is a single dot
  /// product in ascending-column order, so column j of the result is
  /// bitwise identical to matvec on column j of X — the invariant the
  /// block round data path relies on at b = 1.
  [[nodiscard]] Matrix matmat(const Matrix& x) const;

  /// Panel form of matmat: x is cols() x width row-major, y is
  /// rows() x width row-major; avoids allocation in loops.
  void matmat_into(std::span<const double> x, std::size_t width,
                   std::span<double> y) const;

  /// C = this * B (cache-blocked i-k-j loop).
  [[nodiscard]] Matrix matmul(const Matrix& b) const;

  [[nodiscard]] Matrix transposed() const;

  /// this += alpha * B (same shape).
  void add_scaled(const Matrix& b, double alpha);

  void scale(double alpha);

  [[nodiscard]] double frobenius_norm() const;

  /// Max |a_ij - b_ij|; shapes must match.
  [[nodiscard]] double max_abs_diff(const Matrix& b) const;

  /// Stacks blocks vertically; all blocks must share cols().
  static Matrix vstack(std::span<const Matrix> blocks);

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

// ---- free vector helpers -------------------------------------------------

[[nodiscard]] double dot(std::span<const double> a, std::span<const double> b);

/// y += alpha * x
void axpy(double alpha, std::span<const double> x, std::span<double> y);

[[nodiscard]] double norm2(std::span<const double> x);

[[nodiscard]] double max_abs_diff(std::span<const double> a,
                                  std::span<const double> b);

/// Element-wise logistic sigmoid.
[[nodiscard]] Vector sigmoid(std::span<const double> x);

}  // namespace s2c2::linalg
