// Blocked, SIMD-friendly dense and CSR kernels — the worker-side hot
// path behind Matrix::matvec_into / matmat_into, CsrMatrix, and
// EncodedPartition::{matvec,matmat}_rows.
//
// The contract that makes these drop-in under the fingerprint goldens:
// every kernel preserves the naive loops' PER-OUTPUT-ELEMENT accumulation
// order. Each output element is still one scalar chain
//   acc = 0; for c ascending: acc += a[r,c] * x[c,j]
// (CSR rows accumulate in CSR storage order). Tiling only interleaves
// *different* elements' chains — 4 output rows at once for matvec
// (independent accumulators break the add-latency dependence chain the
// naive kernel serializes on), 2 rows x 8 RHS columns for matmat (one
// pass over the row instead of `width`, with the column tile contiguous
// in the panel so the compiler vectorizes across RHS columns). Since
// baseline x86-64 codegen has no FMA contraction and gcc does not
// reassociate FP sums without -ffast-math, the results are bitwise
// identical to the naive reference — tests/kernel_equivalence_test.cpp
// holds every kernel to EXPECT_EQ on doubles.
//
// Optional OpenMP (cmake -DS2C2_OPENMP=ON) parallelizes over *output
// rows* only, so per-element chains — and therefore results — are
// byte-identical at any thread count. Tiling parameters and the
// measured effect: docs/PERFORMANCE.md.
//
// The pool overloads below are the deterministic intra-round parallel
// path (no OpenMP dependency): output rows are split into contiguous,
// tile-aligned, NON-OVERLAPPING blocks, one per participating thread of
// the caller-supplied util::ThreadPool (help-first member parallel_for,
// so they are safe to call from inside a pool task). Because every
// output element's accumulation chain is untouched by the split, the
// parallel results are bitwise identical to the serial kernels at any
// thread count — the same invariant the OpenMP path relies on, pinned by
// tests/kernel_equivalence_test.cpp's serial≡parallel EXPECT_EQ sweeps.
// A null pool (or work below kPoolMinWork) runs the serial kernel.
#pragma once

#include <cstddef>

namespace s2c2::util {
class ThreadPool;
}  // namespace s2c2::util

#if defined(__GNUC__) || defined(__clang__)
#define S2C2_RESTRICT __restrict__
#elif defined(_MSC_VER)
#define S2C2_RESTRICT __restrict
#else
#define S2C2_RESTRICT
#endif

namespace s2c2::linalg::kernels {

/// Row tile for dense matvec: independent accumulator chains per tile.
inline constexpr std::size_t kMatvecRowTile = 4;
/// RHS-column tile for matmat: contiguous in the row-major panel.
inline constexpr std::size_t kMatmatColTile = 8;
/// Row tile for dense matmat (paired with kMatmatColTile accumulators).
inline constexpr std::size_t kMatmatRowTile = 2;

/// Minimum multiply count before the pool overloads fan out; below it the
/// pool's claim/notify overhead costs more than the kernel itself (the
/// same rationale as the OpenMP path's internal threshold).
inline constexpr std::size_t kPoolMinWork = 1u << 16;

/// y[0..rows) = A * x for row-major A (rows x cols). y must not alias A/x.
void dense_matvec(const double* S2C2_RESTRICT a, std::size_t rows,
                  std::size_t cols, const double* S2C2_RESTRICT x,
                  double* S2C2_RESTRICT y);

/// Y = A * X for row-major A (rows x cols) and row-major panel X
/// (cols x width); Y is rows x width. Column j of Y is bitwise the
/// dense_matvec of column j of X.
void dense_matmat(const double* S2C2_RESTRICT a, std::size_t rows,
                  std::size_t cols, const double* S2C2_RESTRICT x,
                  std::size_t width, double* S2C2_RESTRICT y);

/// y[0..rows) = A * x for `rows` CSR rows. `row_ptr` points at the first
/// row's entry and holds rows+1 offsets into the *absolute* col_idx /
/// values arrays — pass `row_ptr() + r0` to run a row sub-range.
void csr_matvec(const std::size_t* S2C2_RESTRICT row_ptr, std::size_t rows,
                const std::size_t* S2C2_RESTRICT col_idx,
                const double* S2C2_RESTRICT values,
                const double* S2C2_RESTRICT x, double* S2C2_RESTRICT y);

/// Tiled CSR panel product: Y (rows x width) = A * X (cols x width),
/// one pass over each row's nonzeros per column tile instead of one pass
/// per RHS column. Same row sub-range convention as csr_matvec.
void csr_matmat(const std::size_t* S2C2_RESTRICT row_ptr, std::size_t rows,
                const std::size_t* S2C2_RESTRICT col_idx,
                const double* S2C2_RESTRICT values,
                const double* S2C2_RESTRICT x, std::size_t width,
                double* S2C2_RESTRICT y);

// ---- deterministic row-parallel variants (intra-round parallelism) ----
// Identical bits to the serial kernels above at ANY pool size: the row
// split is over whole output elements only (header contract). Pass
// pool == nullptr for the serial path.

/// Row-parallel dense_matvec over tile-aligned row blocks.
void dense_matvec(const double* a, std::size_t rows, std::size_t cols,
                  const double* x, double* y, util::ThreadPool* pool);

/// Row-parallel dense_matmat over tile-aligned row blocks.
void dense_matmat(const double* a, std::size_t rows, std::size_t cols,
                  const double* x, std::size_t width, double* y,
                  util::ThreadPool* pool);

/// Row-parallel csr_matvec (row sub-range convention unchanged).
void csr_matvec(const std::size_t* row_ptr, std::size_t rows,
                const std::size_t* col_idx, const double* values,
                const double* x, double* y, util::ThreadPool* pool);

/// Row-parallel csr_matmat (row sub-range convention unchanged).
void csr_matmat(const std::size_t* row_ptr, std::size_t rows,
                const std::size_t* col_idx, const double* values,
                const double* x, std::size_t width, double* y,
                util::ThreadPool* pool);

}  // namespace s2c2::linalg::kernels
