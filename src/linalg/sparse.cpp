#include "src/linalg/sparse.h"

#include <algorithm>

#include "src/linalg/kernels.h"
#include "src/util/require.h"

namespace s2c2::linalg {

CsrMatrix::CsrMatrix(std::size_t rows, std::size_t cols,
                     std::vector<Triplet> triplets)
    : rows_(rows), cols_(cols) {
  for (const Triplet& t : triplets) {
    S2C2_REQUIRE(t.row < rows && t.col < cols, "triplet out of bounds");
  }
  std::sort(triplets.begin(), triplets.end(),
            [](const Triplet& a, const Triplet& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });
  row_ptr_.assign(rows_ + 1, 0);
  col_idx_.reserve(triplets.size());
  values_.reserve(triplets.size());
  for (std::size_t i = 0; i < triplets.size();) {
    const std::size_t r = triplets[i].row;
    const std::size_t c = triplets[i].col;
    double v = 0.0;
    while (i < triplets.size() && triplets[i].row == r &&
           triplets[i].col == c) {
      v += triplets[i].value;
      ++i;
    }
    if (v != 0.0) {
      col_idx_.push_back(c);
      values_.push_back(v);
      ++row_ptr_[r + 1];
    }
  }
  for (std::size_t r = 0; r < rows_; ++r) row_ptr_[r + 1] += row_ptr_[r];
}

Vector CsrMatrix::matvec(std::span<const double> x) const {
  Vector y(rows_, 0.0);
  matvec_into(x, y);
  return y;
}

void CsrMatrix::matvec_into(std::span<const double> x,
                            std::span<double> y) const {
  S2C2_REQUIRE(x.size() == cols_, "CSR matvec: x size mismatch");
  S2C2_REQUIRE(y.size() == rows_, "CSR matvec: y size mismatch");
  kernels::csr_matvec(row_ptr_.data(), rows_, col_idx_.data(), values_.data(),
                      x.data(), y.data());
}

Matrix CsrMatrix::matmat(const Matrix& x) const {
  S2C2_REQUIRE(x.rows() == cols_, "CSR matmat: inner dimension mismatch");
  Matrix y(rows_, x.cols());
  matmat_into(x.data(), x.cols(), y.mutable_data());
  return y;
}

void CsrMatrix::matmat_into(std::span<const double> x, std::size_t width,
                            std::span<double> y) const {
  S2C2_REQUIRE(width > 0, "CSR matmat: width must be >= 1");
  S2C2_REQUIRE(x.size() == cols_ * width, "CSR matmat: x panel size mismatch");
  S2C2_REQUIRE(y.size() == rows_ * width, "CSR matmat: y panel size mismatch");
  kernels::csr_matmat(row_ptr_.data(), rows_, col_idx_.data(), values_.data(),
                      x.data(), width, y.data());
}

CsrMatrix CsrMatrix::row_block(std::size_t begin, std::size_t end) const {
  S2C2_REQUIRE(begin <= end && end <= rows_, "row_block out of bounds");
  CsrMatrix out;
  out.rows_ = end - begin;
  out.cols_ = cols_;
  out.row_ptr_.assign(out.rows_ + 1, 0);
  const std::size_t lo = row_ptr_[begin];
  const std::size_t hi = row_ptr_[end];
  out.col_idx_.assign(col_idx_.begin() + static_cast<std::ptrdiff_t>(lo),
                      col_idx_.begin() + static_cast<std::ptrdiff_t>(hi));
  out.values_.assign(values_.begin() + static_cast<std::ptrdiff_t>(lo),
                     values_.begin() + static_cast<std::ptrdiff_t>(hi));
  for (std::size_t r = 0; r < out.rows_; ++r) {
    out.row_ptr_[r + 1] = row_ptr_[begin + r + 1] - lo;
  }
  return out;
}

CsrMatrix CsrMatrix::transposed() const {
  std::vector<Triplet> trips;
  trips.reserve(nnz());
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t p = row_ptr_[r]; p < row_ptr_[r + 1]; ++p) {
      trips.push_back({col_idx_[p], r, values_[p]});
    }
  }
  return CsrMatrix(cols_, rows_, std::move(trips));
}

Matrix CsrMatrix::to_dense() const {
  Matrix d(rows_, cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t p = row_ptr_[r]; p < row_ptr_[r + 1]; ++p) {
      d(r, col_idx_[p]) += values_[p];
    }
  }
  return d;
}

}  // namespace s2c2::linalg
