#include "src/linalg/vandermonde.h"

#include <algorithm>
#include <stdexcept>

#include "src/util/require.h"

namespace s2c2::linalg {

Matrix vandermonde(std::span<const double> points, std::size_t degree) {
  S2C2_REQUIRE(degree > 0, "vandermonde degree must be positive");
  Matrix m(points.size(), degree);
  for (std::size_t r = 0; r < points.size(); ++r) {
    double p = 1.0;
    for (std::size_t c = 0; c < degree; ++c) {
      m(r, c) = p;
      p *= points[r];
    }
  }
  return m;
}

Vector vandermonde_row(double x, std::size_t degree) {
  S2C2_REQUIRE(degree > 0, "vandermonde degree must be positive");
  Vector row(degree);
  double p = 1.0;
  for (std::size_t c = 0; c < degree; ++c) {
    row[c] = p;
    p *= x;
  }
  return row;
}

VandermondeSolver::VandermondeSolver(std::vector<double> points)
    : points_(std::move(points)) {
  S2C2_REQUIRE(!points_.empty(), "VandermondeSolver needs >= 1 node");
  std::vector<double> sorted = points_;
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 1; i < sorted.size(); ++i) {
    if (sorted[i] == sorted[i - 1]) {
      throw std::invalid_argument(
          "VandermondeSolver: coincident nodes make the system singular");
    }
  }
}

Vector VandermondeSolver::solve(std::span<const double> b) const {
  const std::size_t k = dim();
  S2C2_REQUIRE(b.size() == k, "Vandermonde solve: rhs size mismatch");
  Vector a(b.begin(), b.end());
  solve_inplace(a, 1);
  return a;
}

void VandermondeSolver::solve_inplace(std::span<double> b_rowmajor,
                                      std::size_t width) const {
  const std::size_t k = dim();
  S2C2_REQUIRE(width > 0 && b_rowmajor.size() == k * width,
               "Vandermonde solve_inplace: rhs layout mismatch");
  const std::span<const double> x = points_;
  // Björck–Pereyra, vectorized across the RHS columns.
  // Pass 1: divided differences — row i becomes f[x_{i-j-1}, ..., x_i].
  for (std::size_t j = 0; j + 1 < k; ++j) {
    for (std::size_t i = k - 1; i > j; --i) {
      const double denom = x[i] - x[i - j - 1];
      double* ri = b_rowmajor.data() + i * width;
      const double* rp = b_rowmajor.data() + (i - 1) * width;
      for (std::size_t c = 0; c < width; ++c) {
        ri[c] = (ri[c] - rp[c]) / denom;
      }
    }
  }
  // Pass 2: Newton basis -> monomial coefficients (synthetic division).
  for (std::size_t jj = k - 1; jj-- > 0;) {
    const double xj = x[jj];
    for (std::size_t i = jj; i + 1 < k; ++i) {
      double* ri = b_rowmajor.data() + i * width;
      const double* rn = b_rowmajor.data() + (i + 1) * width;
      for (std::size_t c = 0; c < width; ++c) {
        ri[c] -= xj * rn[c];
      }
    }
  }
}

}  // namespace s2c2::linalg
