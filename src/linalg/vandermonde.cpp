#include "src/linalg/vandermonde.h"

#include "src/util/require.h"

namespace s2c2::linalg {

Matrix vandermonde(std::span<const double> points, std::size_t degree) {
  S2C2_REQUIRE(degree > 0, "vandermonde degree must be positive");
  Matrix m(points.size(), degree);
  for (std::size_t r = 0; r < points.size(); ++r) {
    double p = 1.0;
    for (std::size_t c = 0; c < degree; ++c) {
      m(r, c) = p;
      p *= points[r];
    }
  }
  return m;
}

Vector vandermonde_row(double x, std::size_t degree) {
  S2C2_REQUIRE(degree > 0, "vandermonde degree must be positive");
  Vector row(degree);
  double p = 1.0;
  for (std::size_t c = 0; c < degree; ++c) {
    row[c] = p;
    p *= x;
  }
  return row;
}

}  // namespace s2c2::linalg
