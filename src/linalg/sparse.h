// Compressed sparse row (CSR) matrices.
//
// Graph workloads (PageRank, graph filtering) operate on adjacency /
// Laplacian matrices that are far too sparse for dense storage at realistic
// node counts. Systematic partitions of a coded graph operator stay sparse;
// only parity partitions densify (they are sums of row blocks), which
// coding/mds_code.h handles by materializing parity blocks densely.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "src/linalg/matrix.h"

namespace s2c2::linalg {

struct Triplet {
  std::size_t row;
  std::size_t col;
  double value;
};

class CsrMatrix {
 public:
  CsrMatrix() = default;

  /// Builds from triplets; duplicate (row,col) entries are summed.
  CsrMatrix(std::size_t rows, std::size_t cols,
            std::vector<Triplet> triplets);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t nnz() const noexcept { return values_.size(); }

  /// y = this * x.
  [[nodiscard]] Vector matvec(std::span<const double> x) const;

  void matvec_into(std::span<const double> x, std::span<double> y) const;

  /// Y = this * X for a row-major multi-RHS panel X (cols() x b). Per-row
  /// nonzeros are accumulated in CSR order per column, so column j of the
  /// result is bitwise identical to matvec on column j of X.
  [[nodiscard]] Matrix matmat(const Matrix& x) const;

  /// Panel form of matmat: x is cols() x width row-major, y rows() x width.
  void matmat_into(std::span<const double> x, std::size_t width,
                   std::span<double> y) const;

  /// Rows [begin, end) as a new CSR matrix (same column space).
  [[nodiscard]] CsrMatrix row_block(std::size_t begin, std::size_t end) const;

  [[nodiscard]] CsrMatrix transposed() const;

  [[nodiscard]] Matrix to_dense() const;

  /// Accessors for the raw CSR arrays (read-only).
  [[nodiscard]] std::span<const std::size_t> row_ptr() const noexcept {
    return row_ptr_;
  }
  [[nodiscard]] std::span<const std::size_t> col_idx() const noexcept {
    return col_idx_;
  }
  [[nodiscard]] std::span<const double> values() const noexcept {
    return values_;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::size_t> row_ptr_;  // size rows_+1
  std::vector<std::size_t> col_idx_;
  std::vector<double> values_;
};

}  // namespace s2c2::linalg
