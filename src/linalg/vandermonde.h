// Vandermonde matrices over ℝ, and the structured O(k²) solver for them.
//
// Three uses in the reproduction:
//  * parity rows for the classic MDS construction (paper's §2 worked
//    example A1+A2, A1+2A2 is a Vandermonde parity at nodes 1, 2);
//  * polynomial-code decoding, which inverts a Vandermonde system in the
//    evaluation points of the responding workers (paper §5) — solved by
//    VandermondeSolver below in O(k²) per right-hand side instead of the
//    dense O(k³) LU factorization (cost model: docs/PERFORMANCE.md);
//  * the decode-cache subsystem (coding/decode_context.h) picks this
//    structured path automatically for pure-Vandermonde recovery systems.
//
// Real-valued Vandermonde systems become hopelessly ill-conditioned as the
// dimension grows, which is why coding/generator_matrix.h defaults to
// Gaussian parity for large k (documented substitution in docs/DESIGN.md
// §2). The Björck–Pereyra solve sidesteps part of that: it works on the
// nodes directly (divided differences + Newton-to-monomial), and for
// well-ordered positive nodes achieves much higher relative accuracy than
// LU on the explicitly formed matrix.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "src/linalg/matrix.h"

namespace s2c2::linalg {

/// Row i = [1, x_i, x_i^2, ..., x_i^{degree-1}]. O(points · degree).
[[nodiscard]] Matrix vandermonde(std::span<const double> points,
                                 std::size_t degree);

/// Single Vandermonde row at point x: [1, x, ..., x^{degree-1}]. O(degree).
[[nodiscard]] Vector vandermonde_row(double x, std::size_t degree);

/// Structured solver for the primal Vandermonde system V(x)·a = f, where
/// V(x) row i is [1, x_i, ..., x_i^{k-1}] — i.e. polynomial interpolation:
/// the solution rows are the monomial coefficients of the interpolant.
///
/// Björck–Pereyra (1970): a divided-difference pass followed by a
/// Newton-to-monomial pass, ~2k² flops per right-hand side and O(1) setup —
/// there is no factorization object to build, which is what makes fresh
/// responder sets cheap in the decode cache (coding/decode_context.h).
/// Contrast: dense LU pays 2/3·k³ once per responder set plus 2k² per RHS
/// (linalg/lu.h). Cost model and measurements: docs/PERFORMANCE.md.
class VandermondeSolver {
 public:
  /// Takes the nodes x_0..x_{k-1}. Throws std::invalid_argument if empty
  /// or if two nodes coincide (the system would be singular).
  explicit VandermondeSolver(std::vector<double> points);

  [[nodiscard]] std::size_t dim() const noexcept { return points_.size(); }
  [[nodiscard]] std::span<const double> points() const noexcept {
    return points_;
  }

  /// Solves V(x)·a = b for a single right-hand side. O(k²).
  [[nodiscard]] Vector solve(std::span<const double> b) const;

  /// In-place multi-RHS solve over a row-major RHS laid out as k rows of
  /// `width` values: column c of the RHS is solved independently, so one
  /// call decodes a whole batch of chunk products. O(k² · width).
  void solve_inplace(std::span<double> b_rowmajor, std::size_t width) const;

 private:
  std::vector<double> points_;
};

}  // namespace s2c2::linalg
