// Vandermonde matrices over ℝ.
//
// Two uses in the reproduction:
//  * parity rows for the classic MDS construction (paper's §2 worked
//    example A1+A2, A1+2A2 is a Vandermonde parity at nodes 1, 2);
//  * polynomial-code decoding, which inverts a Vandermonde system in the
//    evaluation points of the responding workers (paper §5).
//
// Real-valued Vandermonde systems become hopelessly ill-conditioned as the
// dimension grows, which is why coding/generator_matrix.h defaults to
// Gaussian parity for large k (documented substitution in DESIGN.md).
#pragma once

#include <cstddef>
#include <span>

#include "src/linalg/matrix.h"

namespace s2c2::linalg {

/// Row i = [1, x_i, x_i^2, ..., x_i^{degree-1}].
[[nodiscard]] Matrix vandermonde(std::span<const double> points,
                                 std::size_t degree);

/// Single Vandermonde row at point x: [1, x, ..., x^{degree-1}].
[[nodiscard]] Vector vandermonde_row(double x, std::size_t degree);

}  // namespace s2c2::linalg
