#include "src/linalg/matrix.h"

#include <algorithm>
#include <cmath>

#include "src/linalg/kernels.h"
#include "src/util/require.h"

namespace s2c2::linalg {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

Matrix::Matrix(std::size_t rows, std::size_t cols, std::vector<double> data)
    : rows_(rows), cols_(cols), data_(std::move(data)) {
  S2C2_REQUIRE(data_.size() == rows_ * cols_,
               "matrix data size does not match rows*cols");
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::random_uniform(std::size_t rows, std::size_t cols,
                              util::Rng& rng, double lo, double hi) {
  Matrix m(rows, cols);
  for (double& v : m.data_) v = rng.uniform(lo, hi);
  return m;
}

Matrix Matrix::random_normal(std::size_t rows, std::size_t cols,
                             util::Rng& rng, double stddev) {
  Matrix m(rows, cols);
  for (double& v : m.data_) v = rng.normal(0.0, stddev);
  return m;
}

Matrix Matrix::row_block(std::size_t begin, std::size_t end) const {
  S2C2_REQUIRE(begin <= end && end <= rows_, "row_block range out of bounds");
  Matrix out(end - begin, cols_);
  std::copy(data_.begin() + static_cast<std::ptrdiff_t>(begin * cols_),
            data_.begin() + static_cast<std::ptrdiff_t>(end * cols_),
            out.data_.begin());
  return out;
}

Vector Matrix::matvec(std::span<const double> x) const {
  Vector y(rows_, 0.0);
  matvec_into(x, y);
  return y;
}

void Matrix::matvec_into(std::span<const double> x, std::span<double> y) const {
  S2C2_REQUIRE(x.size() == cols_, "matvec: x size mismatch");
  S2C2_REQUIRE(y.size() == rows_, "matvec: y size mismatch");
  kernels::dense_matvec(data_.data(), rows_, cols_, x.data(), y.data());
}

Matrix Matrix::matmat(const Matrix& x) const {
  S2C2_REQUIRE(x.rows() == cols_, "matmat: inner dimension mismatch");
  Matrix y(rows_, x.cols());
  matmat_into(x.data(), x.cols(), y.mutable_data());
  return y;
}

void Matrix::matmat_into(std::span<const double> x, std::size_t width,
                         std::span<double> y) const {
  S2C2_REQUIRE(width > 0, "matmat: width must be >= 1");
  S2C2_REQUIRE(x.size() == cols_ * width, "matmat: x panel size mismatch");
  S2C2_REQUIRE(y.size() == rows_ * width, "matmat: y panel size mismatch");
  kernels::dense_matmat(data_.data(), rows_, cols_, x.data(), width, y.data());
}

Vector Matrix::matvec_transposed(std::span<const double> x) const {
  S2C2_REQUIRE(x.size() == rows_, "matvec_transposed: x size mismatch");
  Vector y(cols_, 0.0);
  const double* a = data_.data();
  for (std::size_t r = 0; r < rows_; ++r) {
    const double xr = x[r];
    if (xr == 0.0) continue;
    const double* row = a + r * cols_;
    for (std::size_t c = 0; c < cols_; ++c) y[c] += xr * row[c];
  }
  return y;
}

Matrix Matrix::matmul(const Matrix& b) const {
  S2C2_REQUIRE(cols_ == b.rows_, "matmul: inner dimension mismatch");
  Matrix c(rows_, b.cols_);
  // i-k-j ordering: streams through B rows and C rows contiguously.
  constexpr std::size_t kBlock = 64;
  for (std::size_t i0 = 0; i0 < rows_; i0 += kBlock) {
    const std::size_t i1 = std::min(i0 + kBlock, rows_);
    for (std::size_t k0 = 0; k0 < cols_; k0 += kBlock) {
      const std::size_t k1 = std::min(k0 + kBlock, cols_);
      for (std::size_t i = i0; i < i1; ++i) {
        double* crow = c.data_.data() + i * c.cols_;
        for (std::size_t k = k0; k < k1; ++k) {
          const double aik = (*this)(i, k);
          if (aik == 0.0) continue;
          const double* brow = b.data_.data() + k * b.cols_;
          for (std::size_t j = 0; j < b.cols_; ++j) crow[j] += aik * brow[j];
        }
      }
    }
  }
  return c;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  }
  return t;
}

void Matrix::add_scaled(const Matrix& b, double alpha) {
  S2C2_REQUIRE(rows_ == b.rows_ && cols_ == b.cols_,
               "add_scaled: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) {
    data_[i] += alpha * b.data_[i];
  }
}

void Matrix::scale(double alpha) {
  for (double& v : data_) v *= alpha;
}

double Matrix::frobenius_norm() const {
  double acc = 0.0;
  for (double v : data_) acc += v * v;
  return std::sqrt(acc);
}

double Matrix::max_abs_diff(const Matrix& b) const {
  S2C2_REQUIRE(rows_ == b.rows_ && cols_ == b.cols_,
               "max_abs_diff: shape mismatch");
  double m = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    m = std::max(m, std::abs(data_[i] - b.data_[i]));
  }
  return m;
}

Matrix Matrix::vstack(std::span<const Matrix> blocks) {
  S2C2_REQUIRE(!blocks.empty(), "vstack of no blocks");
  const std::size_t cols = blocks.front().cols();
  std::size_t rows = 0;
  for (const Matrix& b : blocks) {
    S2C2_REQUIRE(b.cols() == cols, "vstack: column mismatch");
    rows += b.rows();
  }
  Matrix out(rows, cols);
  std::size_t at = 0;
  for (const Matrix& b : blocks) {
    std::copy(b.data_.begin(), b.data_.end(),
              out.data_.begin() + static_cast<std::ptrdiff_t>(at * cols));
    at += b.rows();
  }
  return out;
}

double dot(std::span<const double> a, std::span<const double> b) {
  S2C2_REQUIRE(a.size() == b.size(), "dot: size mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

void axpy(double alpha, std::span<const double> x, std::span<double> y) {
  S2C2_REQUIRE(x.size() == y.size(), "axpy: size mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

double norm2(std::span<const double> x) { return std::sqrt(dot(x, x)); }

double max_abs_diff(std::span<const double> a, std::span<const double> b) {
  S2C2_REQUIRE(a.size() == b.size(), "max_abs_diff: size mismatch");
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::abs(a[i] - b[i]));
  }
  return m;
}

Vector sigmoid(std::span<const double> x) {
  Vector out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    out[i] = 1.0 / (1.0 + std::exp(-x[i]));
  }
  return out;
}

}  // namespace s2c2::linalg
