// Arena — a monotonic per-round scratch allocator for the hot path.
//
// The round lifecycle produces many short-lived, variable-shaped buffers
// (one chunk-result block per (worker, chunk) response, the decoder's
// batched RHS staging). Allocating them from the heap costs thousands of
// malloc/free pairs per round at fleet scale and dominated the n = 1000
// rounds/sec profile (bench/bench_rounds.cpp). The arena replaces them
// with pointer bumps: allocate() carves from a chain of large blocks,
// reset() rewinds to the first block while *retaining* every block, so a
// steady-state round — same shapes as the last one — touches the heap
// zero times (tests/arena_test.cpp pins this with a counting operator
// new).
//
// Contract:
//  * Memory is uninitialized; trivially-destructible payloads only
//    (alloc_span is constrained to trivial types). Nothing is destroyed
//    on reset — do not place owning objects in an arena.
//  * Spans returned before the last reset() are invalidated by it. The
//    round executor resets at round start, so arena-backed chunk results
//    live exactly as long as the ledger they decode from.
//  * Oversize requests (> block_bytes) get a dedicated block of exactly
//    the requested size, chained and retained like any other block.
//  * Not thread-safe: one arena per engine, like the decode context.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

namespace s2c2::util {

class Arena {
 public:
  /// `block_bytes` is the granularity fresh blocks are reserved at.
  explicit Arena(std::size_t block_bytes = 1u << 16);

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;
  Arena(Arena&&) noexcept = default;
  Arena& operator=(Arena&&) noexcept = default;

  /// Uninitialized storage, aligned to `align` (a power of two <=
  /// alignof(std::max_align_t)). Grows the block chain on first use of a
  /// size profile; steady-state repeats are pure pointer bumps.
  [[nodiscard]] void* allocate(std::size_t bytes,
                               std::size_t align = alignof(std::max_align_t));

  /// `count` default-uninitialized Ts (trivial types only).
  template <typename T>
  [[nodiscard]] std::span<T> alloc_span(std::size_t count) {
    static_assert(std::is_trivially_destructible_v<T> &&
                      std::is_trivially_default_constructible_v<T>,
                  "arena payloads must be trivial");
    return {static_cast<T*>(allocate(count * sizeof(T), alignof(T))), count};
  }

  /// Rewinds to empty while retaining every reserved block.
  void reset() noexcept;

  /// Bytes handed out since the last reset().
  [[nodiscard]] std::size_t bytes_used() const noexcept { return used_; }
  /// Total bytes reserved across the retained block chain.
  [[nodiscard]] std::size_t bytes_reserved() const noexcept {
    return reserved_;
  }
  [[nodiscard]] std::size_t block_count() const noexcept {
    return blocks_.size();
  }

 private:
  struct Block {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
  };

  std::size_t block_bytes_;
  std::vector<Block> blocks_;
  std::size_t current_ = 0;  // block the bump pointer lives in
  std::size_t offset_ = 0;   // bump offset within blocks_[current_]
  std::size_t used_ = 0;
  std::size_t reserved_ = 0;
};

}  // namespace s2c2::util
