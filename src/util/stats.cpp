#include "src/util/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "src/util/require.h"

namespace s2c2::util {

double mean(std::span<const double> xs) {
  S2C2_REQUIRE(!xs.empty(), "mean of empty range");
  return std::accumulate(xs.begin(), xs.end(), 0.0) /
         static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  S2C2_REQUIRE(!xs.empty(), "variance of empty range");
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return acc / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double percentile_scratch(std::span<const double> xs, double p,
                          std::vector<double>& scratch) {
  S2C2_REQUIRE(!xs.empty(), "percentile of empty range");
  S2C2_REQUIRE(p >= 0.0 && p <= 100.0, "percentile p outside [0,100]");
  scratch.assign(xs.begin(), xs.end());
  std::vector<double>& sorted = scratch;
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double median_scratch(std::span<const double> xs,
                      std::vector<double>& scratch) {
  return percentile_scratch(xs, 50.0, scratch);
}

double percentile(std::span<const double> xs, double p) {
  std::vector<double> scratch;
  return percentile_scratch(xs, p, scratch);
}

double median(std::span<const double> xs) { return percentile(xs, 50.0); }

double min_of(std::span<const double> xs) {
  S2C2_REQUIRE(!xs.empty(), "min of empty range");
  return *std::min_element(xs.begin(), xs.end());
}

double max_of(std::span<const double> xs) {
  S2C2_REQUIRE(!xs.empty(), "max of empty range");
  return *std::max_element(xs.begin(), xs.end());
}

double sum(std::span<const double> xs) {
  return std::accumulate(xs.begin(), xs.end(), 0.0);
}

double mape(std::span<const double> predicted, std::span<const double> actual,
            double eps) {
  S2C2_REQUIRE(predicted.size() == actual.size(),
               "mape requires equal-length series");
  double acc = 0.0;
  std::size_t counted = 0;
  for (std::size_t i = 0; i < actual.size(); ++i) {
    if (std::abs(actual[i]) < eps) continue;
    acc += std::abs((predicted[i] - actual[i]) / actual[i]);
    ++counted;
  }
  if (counted == 0) return 0.0;
  return 100.0 * acc / static_cast<double>(counted);
}

std::vector<double> normalized_by(std::span<const double> xs, double denom) {
  S2C2_REQUIRE(denom != 0.0, "normalizing by zero");
  std::vector<double> out(xs.begin(), xs.end());
  for (double& x : out) x /= denom;
  return out;
}

}  // namespace s2c2::util
