// Small descriptive-statistics helpers used by the accounting, prediction
// evaluation, and benchmark-reporting layers.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace s2c2::util {

/// Arithmetic mean. Empty input is a precondition violation.
[[nodiscard]] double mean(std::span<const double> xs);

/// Population variance (divides by N).
[[nodiscard]] double variance(std::span<const double> xs);

[[nodiscard]] double stddev(std::span<const double> xs);

/// Linear-interpolation percentile, p in [0,100].
[[nodiscard]] double percentile(std::span<const double> xs, double p);

[[nodiscard]] double median(std::span<const double> xs);

/// Allocation-free percentile/median: identical arithmetic to the forms
/// above, but the sort copy lives in caller-owned scratch (warm capacity =
/// zero heap traffic). Used by the per-round allocators on the hot path.
[[nodiscard]] double percentile_scratch(std::span<const double> xs, double p,
                                        std::vector<double>& scratch);

[[nodiscard]] double median_scratch(std::span<const double> xs,
                                    std::vector<double>& scratch);

[[nodiscard]] double min_of(std::span<const double> xs);
[[nodiscard]] double max_of(std::span<const double> xs);
[[nodiscard]] double sum(std::span<const double> xs);

/// Mean Absolute Percentage Error (in percent, e.g. 16.7 for 16.7%).
/// Entries where |actual| < eps are skipped to avoid division blowup;
/// if all entries are skipped the result is 0.
[[nodiscard]] double mape(std::span<const double> predicted,
                          std::span<const double> actual,
                          double eps = 1e-12);

/// Divides every element by `denom` (used for "normalized execution time"
/// reporting in the figure benches).
[[nodiscard]] std::vector<double> normalized_by(std::span<const double> xs,
                                                double denom);

}  // namespace s2c2::util
