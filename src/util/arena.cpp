#include "src/util/arena.h"

#include <algorithm>

#include "src/util/require.h"

namespace s2c2::util {

Arena::Arena(std::size_t block_bytes)
    : block_bytes_(std::max<std::size_t>(block_bytes, 64)) {}

void* Arena::allocate(std::size_t bytes, std::size_t align) {
  S2C2_REQUIRE(align != 0 && (align & (align - 1)) == 0 &&
                   align <= alignof(std::max_align_t),
               "arena alignment must be a power of two <= max_align_t");
  if (bytes == 0) bytes = 1;  // distinct non-null results for empty spans

  // Advance through retained blocks until one fits; operator new's storage
  // is max_align_t-aligned, so aligning the offset aligns the pointer.
  while (true) {
    if (current_ < blocks_.size()) {
      Block& b = blocks_[current_];
      const std::size_t aligned = (offset_ + align - 1) & ~(align - 1);
      if (aligned + bytes <= b.size) {
        offset_ = aligned + bytes;
        used_ += bytes;
        return b.data.get() + aligned;
      }
      ++current_;
      offset_ = 0;
      continue;
    }
    // Chain a fresh block (oversize requests get an exact-fit block).
    Block b;
    b.size = std::max(block_bytes_, bytes);
    b.data = std::make_unique<std::byte[]>(b.size);
    reserved_ += b.size;
    blocks_.push_back(std::move(b));
  }
}

void Arena::reset() noexcept {
  current_ = 0;
  offset_ = 0;
  used_ = 0;
}

}  // namespace s2c2::util
