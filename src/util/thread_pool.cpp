#include "src/util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <utility>

namespace s2c2::util {

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t n = std::max<std::size_t>(1, threads);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : workers_) {
    if (t.joinable()) t.join();
  }
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

std::size_t ThreadPool::hardware_threads() {
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

void ThreadPool::worker_loop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

void parallel_for(std::size_t count, std::size_t jobs,
                  const std::function<void(std::size_t)>& fn) {
  if (jobs == 0) jobs = ThreadPool::hardware_threads();
  if (jobs <= 1 || count <= 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  std::exception_ptr first_error;
  std::mutex error_mu;
  std::atomic<std::size_t> next{0};
  std::atomic<bool> stop{false};
  {
    ThreadPool pool(std::min(jobs, count));
    // One pull-loop per worker: indices are claimed from a shared counter,
    // so finished workers keep pulling instead of idling behind a static
    // partition (matrix cells vary widely in cost). The first exception
    // stops further claims — the partial results are discarded on rethrow,
    // so finishing the sweep would only waste work.
    for (std::size_t t = 0; t < pool.size(); ++t) {
      pool.submit([&] {
        for (std::size_t i = next.fetch_add(1); i < count && !stop.load();
             i = next.fetch_add(1)) {
          try {
            fn(i);
          } catch (...) {
            stop.store(true);
            std::lock_guard<std::mutex> lock(error_mu);
            if (!first_error) first_error = std::current_exception();
          }
        }
      });
    }
    pool.wait_idle();
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace s2c2::util
