#include "src/util/thread_pool.h"

#include <algorithm>
#include <exception>
#include <utility>

namespace s2c2::util {

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t n = std::max<std::size_t>(1, threads);
  queues_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_.store(true);
  }
  work_cv_.notify_all();
  for (auto& t : workers_) {
    if (t.joinable()) t.join();
  }
}

void ThreadPool::submit(std::function<void()> task) {
  const std::size_t q = next_queue_.fetch_add(1) % queues_.size();
  // pending_ goes up before the push: a worker that wakes on the count but
  // races ahead of the push finds nothing and retries, which is benign;
  // the reverse order could drive the count transiently negative.
  pending_.fetch_add(1);
  {
    std::lock_guard<std::mutex> lock(queues_[q]->mu);
    queues_[q]->tasks.push_back(std::move(task));
  }
  {
    // Empty critical section: serializes with a worker between its
    // predicate check and its wait, so the notify below cannot be lost.
    std::lock_guard<std::mutex> lock(mu_);
  }
  work_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] {
    return pending_.load() == 0 && in_flight_.load() == 0;
  });
}

std::size_t ThreadPool::hardware_threads() {
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

bool ThreadPool::try_pop(std::size_t self, std::function<void()>& task) {
  // Own deque first (front = most recently queued locality), then cycle
  // the siblings stealing from the back.
  {
    WorkerQueue& q = *queues_[self];
    std::lock_guard<std::mutex> lock(q.mu);
    if (!q.tasks.empty()) {
      task = std::move(q.tasks.front());
      q.tasks.pop_front();
      return true;
    }
  }
  for (std::size_t d = 1; d < queues_.size(); ++d) {
    WorkerQueue& q = *queues_[(self + d) % queues_.size()];
    std::lock_guard<std::mutex> lock(q.mu);
    if (!q.tasks.empty()) {
      task = std::move(q.tasks.back());
      q.tasks.pop_back();
      return true;
    }
  }
  return false;
}

void ThreadPool::worker_loop(std::size_t self) {
  while (true) {
    std::function<void()> task;
    if (try_pop(self, task)) {
      in_flight_.fetch_add(1);
      pending_.fetch_sub(1);
      task();
      const std::size_t running = in_flight_.fetch_sub(1) - 1;
      if (running == 0 && pending_.load() == 0) {
        std::lock_guard<std::mutex> lock(mu_);
        idle_cv_.notify_all();
      }
      continue;
    }
    std::unique_lock<std::mutex> lock(mu_);
    work_cv_.wait(lock, [this] {
      return shutdown_.load() || pending_.load() > 0;
    });
    if (shutdown_.load() && pending_.load() == 0) return;
    // pending_ > 0: drop the lock and go find the task (it may land in
    // any deque an instant after the count went up).
  }
}

void parallel_for(std::size_t count, std::size_t jobs,
                  const std::function<void(std::size_t)>& fn) {
  if (jobs == 0) jobs = ThreadPool::hardware_threads();
  if (jobs <= 1 || count <= 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  std::exception_ptr first_error;
  std::mutex error_mu;
  std::atomic<std::size_t> next{0};
  std::atomic<bool> stop{false};
  {
    ThreadPool pool(std::min(jobs, count));
    // One pull-loop per worker: indices are claimed from a shared counter,
    // so finished workers keep pulling instead of idling behind a static
    // partition (matrix cells vary widely in cost), and fetch_add hands
    // each index to exactly one claimant. The first exception stops
    // further claims — the partial results are discarded on rethrow, so
    // finishing the sweep would only waste work.
    for (std::size_t t = 0; t < pool.size(); ++t) {
      pool.submit([&] {
        for (std::size_t i = next.fetch_add(1); i < count && !stop.load();
             i = next.fetch_add(1)) {
          try {
            fn(i);
          } catch (...) {
            stop.store(true);
            std::lock_guard<std::mutex> lock(error_mu);
            if (!first_error) first_error = std::current_exception();
          }
        }
      });
    }
    pool.wait_idle();
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace s2c2::util
