#include "src/util/thread_pool.h"

#include <algorithm>
#include <exception>
#include <utility>

namespace s2c2::util {

namespace {
// Set for the lifetime of every worker_loop; the free parallel_for's
// serial-fallback predicate (nesting contract in the header). A plain
// bool, not a pool pointer: the fallback must trigger for ANY enclosing
// pool, including a different pool's worker.
thread_local bool t_in_pool_worker = false;
}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t n = std::max<std::size_t>(1, threads);
  queues_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_.store(true);
  }
  work_cv_.notify_all();
  for (auto& t : workers_) {
    if (t.joinable()) t.join();
  }
}

void ThreadPool::submit(std::function<void()> task) {
  const std::size_t q = next_queue_.fetch_add(1) % queues_.size();
  // pending_ goes up before the push: a worker that wakes on the count but
  // races ahead of the push finds nothing and retries, which is benign;
  // the reverse order could drive the count transiently negative.
  pending_.fetch_add(1);
  {
    std::lock_guard<std::mutex> lock(queues_[q]->mu);
    queues_[q]->tasks.push_back(std::move(task));
  }
  {
    // Empty critical section: serializes with a worker between its
    // predicate check and its wait, so the notify below cannot be lost.
    std::lock_guard<std::mutex> lock(mu_);
  }
  work_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] {
    return pending_.load() == 0 && in_flight_.load() == 0;
  });
}

bool ThreadPool::in_worker() noexcept { return t_in_pool_worker; }

std::size_t ThreadPool::hardware_threads() {
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

bool ThreadPool::try_pop(std::size_t self, std::function<void()>& task) {
  // Own deque first (front = most recently queued locality), then cycle
  // the siblings stealing from the back.
  {
    WorkerQueue& q = *queues_[self];
    std::lock_guard<std::mutex> lock(q.mu);
    if (!q.tasks.empty()) {
      task = std::move(q.tasks.front());
      q.tasks.pop_front();
      return true;
    }
  }
  for (std::size_t d = 1; d < queues_.size(); ++d) {
    WorkerQueue& q = *queues_[(self + d) % queues_.size()];
    std::lock_guard<std::mutex> lock(q.mu);
    if (!q.tasks.empty()) {
      task = std::move(q.tasks.back());
      q.tasks.pop_back();
      return true;
    }
  }
  return false;
}

void ThreadPool::worker_loop(std::size_t self) {
  t_in_pool_worker = true;
  while (true) {
    std::function<void()> task;
    if (try_pop(self, task)) {
      in_flight_.fetch_add(1);
      pending_.fetch_sub(1);
      task();
      const std::size_t running = in_flight_.fetch_sub(1) - 1;
      if (running == 0 && pending_.load() == 0) {
        std::lock_guard<std::mutex> lock(mu_);
        idle_cv_.notify_all();
      }
      continue;
    }
    std::unique_lock<std::mutex> lock(mu_);
    work_cv_.wait(lock, [this] {
      return shutdown_.load() || pending_.load() > 0;
    });
    if (shutdown_.load() && pending_.load() == 0) return;
    // pending_ > 0: drop the lock and go find the task (it may land in
    // any deque an instant after the count went up).
  }
}

namespace {

/// Shared fan-out state for the help-first member parallel_for. Owned by
/// shared_ptr: a late helper task that loses the race for the last index
/// still touches `next` after the caller has returned, so the state must
/// outlive the caller's frame.
struct FanOutState {
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  std::atomic<bool> stop{false};
  std::mutex mu;
  std::condition_variable done_cv;
  std::exception_ptr first_error;
  std::size_t count = 0;
  const std::function<void(std::size_t)>* fn = nullptr;
};

/// Claims indices from the shared counter until none remain. Every claimed
/// index is counted into `done` exactly once (even after a failure — the
/// stop flag skips the work, not the count), so the caller's wait for
/// done == count always opens.
void drain(FanOutState& s) {
  for (std::size_t i = s.next.fetch_add(1); i < s.count;
       i = s.next.fetch_add(1)) {
    if (!s.stop.load(std::memory_order_relaxed)) {
      try {
        (*s.fn)(i);
      } catch (...) {
        s.stop.store(true, std::memory_order_relaxed);
        std::lock_guard<std::mutex> lock(s.mu);
        if (!s.first_error) s.first_error = std::current_exception();
      }
    }
    if (s.done.fetch_add(1) + 1 == s.count) {
      std::lock_guard<std::mutex> lock(s.mu);
      s.done_cv.notify_all();
    }
  }
}

}  // namespace

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  if (count == 1) {
    fn(0);
    return;
  }
  auto state = std::make_shared<FanOutState>();
  state->count = count;
  state->fn = &fn;
  // The caller claims indices too, so at most count - 1 helpers are ever
  // useful; superfluous helpers would only churn the queues.
  const std::size_t helpers = std::min(size(), count - 1);
  for (std::size_t t = 0; t < helpers; ++t) {
    submit([state] { drain(*state); });
  }
  // Help-first: drain inline. By the time this returns, every index has
  // been CLAIMED (the shared counter is exhausted); the wait below is only
  // for indices claimed by helpers that are still executing them — never
  // for a task sitting unclaimed in a queue, which is why a nested call
  // from one of this pool's own tasks cannot deadlock.
  drain(*state);
  {
    std::unique_lock<std::mutex> lock(state->mu);
    state->done_cv.wait(lock, [&] { return state->done.load() == count; });
  }
  if (state->first_error) std::rethrow_exception(state->first_error);
}

void parallel_for(std::size_t count, std::size_t jobs,
                  const std::function<void(std::size_t)>& fn) {
  if (jobs == 0) jobs = ThreadPool::hardware_threads();
  // Serial fallback when nested inside any pool worker (contract in the
  // header): the enclosing sharding already owns the hardware, and a
  // private pool per nested call would multiply threads combinatorially
  // at (outer jobs x inner jobs).
  if (jobs <= 1 || count <= 1 || ThreadPool::in_worker()) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  std::exception_ptr first_error;
  std::mutex error_mu;
  std::atomic<std::size_t> next{0};
  std::atomic<bool> stop{false};
  {
    ThreadPool pool(std::min(jobs, count));
    // One pull-loop per worker: indices are claimed from a shared counter,
    // so finished workers keep pulling instead of idling behind a static
    // partition (matrix cells vary widely in cost), and fetch_add hands
    // each index to exactly one claimant. The first exception stops
    // further claims — the partial results are discarded on rethrow, so
    // finishing the sweep would only waste work.
    for (std::size_t t = 0; t < pool.size(); ++t) {
      pool.submit([&] {
        for (std::size_t i = next.fetch_add(1); i < count && !stop.load();
             i = next.fetch_add(1)) {
          try {
            fn(i);
          } catch (...) {
            stop.store(true);
            std::lock_guard<std::mutex> lock(error_mu);
            if (!first_error) first_error = std::current_exception();
          }
        }
      });
    }
    pool.wait_idle();
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace s2c2::util
