#include "src/util/table.h"

#include <algorithm>
#include <cstdio>
#include <iomanip>
#include <iostream>
#include <sstream>

#include "src/util/require.h"

namespace s2c2::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  S2C2_REQUIRE(!headers_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  S2C2_REQUIRE(cells.size() <= headers_.size(),
               "row has more cells than headers");
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::add_row_numeric(const std::string& label,
                            const std::vector<double>& values, int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size() + 1);
  cells.push_back(label);
  for (double v : values) cells.push_back(fmt(v, precision));
  add_row(std::move(cells));
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << "  " << std::left << std::setw(static_cast<int>(widths[c]))
         << row[c];
    }
    os << '\n';
  };
  emit_row(headers_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  os << "  " << std::string(total > 2 ? total - 2 : 0, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

void Table::print() const { std::cout << to_string() << std::flush; }

std::string fmt(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string fmt_sci(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2e", v);
  return buf;
}

}  // namespace s2c2::util
