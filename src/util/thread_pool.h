// Fixed-size worker-thread pool + a deterministic parallel_for.
//
// Built for the scenario-matrix executor (src/harness/matrix_runner.h):
// matrix cells are independent, seeded computations, so the pool only needs
// task submission and an idle barrier — no futures, no task graphs. The
// companion parallel_for(count, jobs, fn) runs fn(0..count) across jobs
// threads with each index executed exactly once; callers that write
// results into a preallocated slot per index get bit-identical output
// regardless of thread count, which is the harness's determinism contract.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace s2c2::util {

class ThreadPool {
 public:
  /// Spawns `threads` workers (clamped to >= 1).
  explicit ThreadPool(std::size_t threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains the queue (pending tasks still run), then joins all workers.
  ~ThreadPool();

  /// Enqueues a task. Tasks must not throw — wrap and capture exceptions
  /// at the call site (parallel_for does this for its callers).
  void submit(std::function<void()> task);

  /// Blocks until the queue is empty and no worker is running a task.
  void wait_idle();

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// max(1, std::thread::hardware_concurrency()).
  [[nodiscard]] static std::size_t hardware_threads();

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable work_cv_;   // queue non-empty or shutting down
  std::condition_variable idle_cv_;   // queue empty and nothing in flight
  std::deque<std::function<void()>> queue_;
  std::size_t in_flight_ = 0;
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

/// Runs fn(i) for every i in [0, count), spread over `jobs` threads
/// (jobs == 0 means hardware_threads(); jobs <= 1 runs inline on the
/// caller's thread). Each index runs exactly once; completion order is
/// unspecified, so fn must only touch per-index state. The first exception
/// thrown by any fn(i) is rethrown on the caller's thread after all
/// submitted work has drained.
void parallel_for(std::size_t count, std::size_t jobs,
                  const std::function<void(std::size_t)>& fn);

}  // namespace s2c2::util
