// Fixed-size work-stealing thread pool + a deterministic parallel_for.
//
// Built for the scenario-matrix executor (src/harness/matrix_runner.h):
// matrix cells are independent, seeded computations, so the pool only needs
// task submission and an idle barrier — no futures, no task graphs.
//
// Queueing is work-stealing: each worker owns a deque (submission
// round-robins across them), pops its own front, and steals from the back
// of a sibling's deque when its own runs dry. A worker therefore only
// contends on a per-deque mutex, not one global queue lock, and a long
// task parked on one worker cannot strand the tasks queued behind it —
// siblings steal them. The one global mutex is reserved for sleep/wake
// coordination (empty pool parking, wait_idle, shutdown), which is off the
// task fast path.
//
// The companion parallel_for(count, jobs, fn) runs fn(0..count) across
// jobs threads with each index executed exactly once; callers that write
// results into a preallocated slot per index get bit-identical output
// regardless of thread count, which is the harness's determinism contract
// (pinned by tests/thread_pool_test.cpp at several --jobs values).
//
// Nesting contract (the intra-round parallelism PR; see
// docs/ARCHITECTURE.md "Threading ownership"):
//   * The free parallel_for falls back to SERIAL when called from inside
//     any pool worker — outer sharding (matrix cells, serve sweeps, job
//     suites) composes with inner parallelism without thread explosion,
//     and results are bit-identical either way because each index's work
//     is already order-independent.
//   * The member ThreadPool::parallel_for is HELP-FIRST: the calling
//     thread claims indices from the shared counter alongside the pool's
//     workers, so a call issued from one of the pool's own tasks can never
//     deadlock — every claimed index is executed by an actively draining
//     thread, and the caller's wait is only for claimed indices.
//
// Concurrency-sensitive paths here are covered by the `tsan` CMake preset
// (cmake --preset tsan && cmake --build --preset tsan -j &&
// ctest --preset tsan); CI runs the thread/kernel/arena/parallel-round
// suites under ThreadSanitizer on every push.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace s2c2::util {

class ThreadPool {
 public:
  /// Spawns `threads` workers (clamped to >= 1).
  explicit ThreadPool(std::size_t threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains the queues (pending tasks still run), then joins all workers.
  ~ThreadPool();

  /// Enqueues a task. Tasks must not throw — wrap and capture exceptions
  /// at the call site (parallel_for does this for its callers).
  void submit(std::function<void()> task);

  /// Blocks until every queue is empty and no worker is running a task.
  /// Must NOT be called from inside a pool task (the caller's own task is
  /// in flight, so the barrier would never open) — nested fan-out goes
  /// through the member parallel_for instead.
  void wait_idle();

  /// Help-first blocked fan-out: runs fn(i) for every i in [0, count),
  /// spread over this pool's workers PLUS the calling thread. Each index
  /// runs exactly once (shared-counter claim); fn must only touch
  /// per-index state. Safe to call from inside one of this pool's own
  /// tasks: the caller drains indices inline and waits only for indices
  /// already claimed by actively executing threads, so there is no
  /// circular wait through the queues. The first exception thrown by any
  /// fn(i) is rethrown on the calling thread after every claimed index
  /// has finished.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& fn);

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// True when the calling thread is a worker of ANY ThreadPool — the
  /// free parallel_for's serial-fallback predicate.
  [[nodiscard]] static bool in_worker() noexcept;

  /// max(1, std::thread::hardware_concurrency()).
  [[nodiscard]] static std::size_t hardware_threads();

 private:
  /// One worker's deque. Owner pops the front; thieves pop the back, so a
  /// steal takes the oldest task — the one most likely to head a large
  /// untouched run of work.
  struct WorkerQueue {
    std::mutex mu;
    std::deque<std::function<void()>> tasks;
  };

  bool try_pop(std::size_t self, std::function<void()>& task);
  void worker_loop(std::size_t self);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::atomic<std::size_t> next_queue_{0};  // round-robin submission target

  // Sleep/wake coordination only; never held while running a task.
  // pending_ counts tasks sitting in deques (incremented before the push,
  // so a worker that observes pending_ > 0 and fails to find the task
  // simply retries); in_flight_ counts tasks currently executing.
  std::mutex mu_;
  std::condition_variable work_cv_;  // pending work or shutting down
  std::condition_variable idle_cv_;  // all queues empty, nothing in flight
  std::atomic<std::size_t> pending_{0};
  std::atomic<std::size_t> in_flight_{0};
  std::atomic<bool> shutdown_{false};
  std::vector<std::thread> workers_;
};

/// Runs fn(i) for every i in [0, count), spread over `jobs` threads
/// (jobs == 0 means hardware_threads(); jobs <= 1 runs inline on the
/// caller's thread). Each index runs exactly once; completion order is
/// unspecified, so fn must only touch per-index state. The first exception
/// thrown by any fn(i) is rethrown on the caller's thread after all
/// submitted work has drained. Safe to nest: a call issued from inside any
/// pool worker runs SERIAL on the calling thread (documented fallback —
/// outer sharding already owns the hardware, and per-index work is
/// order-independent, so the results are bit-identical either way).
void parallel_for(std::size_t count, std::size_t jobs,
                  const std::function<void(std::size_t)>& fn);

}  // namespace s2c2::util
