// Seeded random number generation.
//
// Every stochastic component in the library takes an explicit Rng (or a
// seed) so simulations, tests, and benchmarks are reproducible run-to-run.
// Rng::split() derives an independent child stream, which lets a simulation
// hand out per-worker generators without correlated draws.
#pragma once

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

namespace s2c2::util {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Standard normal scaled to N(mean, stddev^2).
  double normal(double mean = 0.0, double stddev = 1.0) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Bernoulli trial.
  bool bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Exponentially distributed with the given rate (lambda).
  double exponential(double rate) {
    return std::exponential_distribution<double>(rate)(engine_);
  }

  /// Derives an independent generator; advancing either does not affect
  /// the other.
  Rng split() { return Rng(engine_() ^ 0x9e3779b97f4a7c15ull); }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    std::shuffle(v.begin(), v.end(), engine_);
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace s2c2::util
