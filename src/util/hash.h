// Deterministic hashing helpers shared by the result-fingerprinting layers
// (scenario matrix cells, job-driver results, report artifacts).
//
// Fingerprints exist so "same seed => identical run" is a *testable*
// property: every result type hashes the exact bit patterns of its event
// log with fnv1a and renders the 64-bit digest as hex. mix64 (splitmix64's
// finalizer) decorrelates seed streams derived from one user seed.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>

namespace s2c2::util {

/// splitmix64 finalizer — decorrelates derived seed streams.
[[nodiscard]] inline std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// FNV-1a offset basis — start fingerprints from this.
inline constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;

/// Folds the 8 bytes of `v` into the running FNV-1a hash `h`.
[[nodiscard]] inline std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffull;
    h *= 0x100000001b3ull;
  }
  return h;
}

/// Folds a double's exact bit pattern (fingerprints must be bit-faithful,
/// not value-approximate: 0.0 and -0.0 hash differently on purpose).
[[nodiscard]] inline std::uint64_t fnv1a(std::uint64_t h, double d) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(d));
  std::memcpy(&bits, &d, sizeof(bits));
  return fnv1a(h, bits);
}

/// Folds a string byte-by-byte.
[[nodiscard]] inline std::uint64_t fnv1a(std::uint64_t h,
                                         const std::string& s) {
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

/// Lower-case 16-digit hex rendering of a digest.
[[nodiscard]] inline std::string hex64(std::uint64_t h) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

}  // namespace s2c2::util
