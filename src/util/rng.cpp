#include "src/util/rng.h"

// Rng is header-only today; this translation unit anchors the module in the
// static library and is the future home of any heavier distributions.
namespace s2c2::util {}
