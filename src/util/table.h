// Fixed-width console table printer used by the figure-reproduction benches
// so their output reads like the paper's tables/figure series.
#pragma once

#include <string>
#include <vector>

namespace s2c2::util {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Adds a row; cells beyond the header count are a precondition violation.
  void add_row(std::vector<std::string> cells);

  /// Convenience: converts doubles with fixed precision.
  void add_row_numeric(const std::string& label,
                       const std::vector<double>& values, int precision = 3);

  /// Renders with column auto-sizing, one header rule.
  [[nodiscard]] std::string to_string() const;

  void print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (benchmark output helper).
[[nodiscard]] std::string fmt(double v, int precision = 3);

/// Scientific notation with 2 significant decimals (decode errors, norms).
[[nodiscard]] std::string fmt_sci(double v);

}  // namespace s2c2::util
