// Precondition / invariant checking for the s2c2 library.
//
// S2C2_REQUIRE  — validates caller-supplied arguments; throws
//                 std::invalid_argument on failure. Never compiled out:
//                 the library is used from benchmarks that run in Release.
// S2C2_CHECK    — validates internal invariants; throws std::logic_error.
//                 A failure indicates a bug in this library, not the caller.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace s2c2::util {

[[noreturn]] inline void throw_invalid_argument(const char* expr,
                                                const char* file, int line,
                                                const std::string& msg) {
  std::ostringstream os;
  os << "s2c2 precondition failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::invalid_argument(os.str());
}

[[noreturn]] inline void throw_logic_error(const char* expr, const char* file,
                                           int line, const std::string& msg) {
  std::ostringstream os;
  os << "s2c2 internal invariant failed: (" << expr << ") at " << file << ":"
     << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::logic_error(os.str());
}

}  // namespace s2c2::util

#define S2C2_REQUIRE(cond, msg)                                              \
  do {                                                                       \
    if (!(cond)) {                                                           \
      ::s2c2::util::throw_invalid_argument(#cond, __FILE__, __LINE__, (msg)); \
    }                                                                        \
  } while (false)

#define S2C2_CHECK(cond, msg)                                            \
  do {                                                                   \
    if (!(cond)) {                                                       \
      ::s2c2::util::throw_logic_error(#cond, __FILE__, __LINE__, (msg)); \
    }                                                                    \
  } while (false)
