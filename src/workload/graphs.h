// Synthetic graphs for the ranking / filtering workloads (paper §6.3).
//
// PageRank runs power iteration on the column-stochastic link matrix of a
// directed power-law graph (preferential attachment, the paper's Toronto
// web-graph stand-in). Graph filtering runs h-hop polynomials of the
// combinatorial Laplacian L = D - A of an undirected graph.
#pragma once

#include <cstddef>

#include "src/linalg/sparse.h"
#include "src/util/rng.h"

namespace s2c2::workload {

/// Directed preferential-attachment graph: node v attaches `out_degree`
/// edges to earlier nodes with probability proportional to in-degree+1.
[[nodiscard]] linalg::CsrMatrix power_law_digraph(std::size_t nodes,
                                                  std::size_t out_degree,
                                                  util::Rng& rng);

/// Erdos-Renyi undirected graph (symmetric adjacency, no self loops).
[[nodiscard]] linalg::CsrMatrix random_undirected(std::size_t nodes,
                                                  double edge_prob,
                                                  util::Rng& rng);

/// Google-matrix operator for PageRank: M(i,j) = 1/outdeg(j) when j->i.
/// Dangling nodes (no out-links) are fixed up by the caller via the
/// standard uniform-teleport correction.
[[nodiscard]] linalg::CsrMatrix link_matrix(const linalg::CsrMatrix& adj);

/// Combinatorial Laplacian L = D - A of an undirected adjacency.
[[nodiscard]] linalg::CsrMatrix combinatorial_laplacian(
    const linalg::CsrMatrix& adj);

}  // namespace s2c2::workload
