#include "src/workload/trace_gen.h"

#include <algorithm>
#include <cmath>

#include "src/util/require.h"

namespace s2c2::workload {

CloudTraceConfig stable_cloud_config() {
  CloudTraceConfig c;
  c.switch_prob = 0.0;   // regimes never change mid-run
  c.ar_sigma = 0.008;    // gentle wander only
  // No deep-straggler regime: the paper's low-mis-prediction environment
  // (Fig 8) had "no significant variations in speeds between the nodes".
  c.regime_levels = {1.0, 0.85, 0.7};
  return c;
}

CloudTraceConfig volatile_cloud_config() {
  CloudTraceConfig c;
  // Per-node, per-iteration regime-switch probability of 2%: across a
  // 10-node fleet that is 1 - 0.98^10 ~ 18% of iterations with a sudden
  // change — the paper's worst-case 18% mis-prediction environment.
  c.switch_prob = 0.06;
  c.ar_sigma = 0.02;
  c.recovery_ramp = 3;
  // Shared-tenancy contention: the fleet is mostly fast with sudden deep
  // but *transient* dips (the paper's droplet traces dip and recover;
  // persistent 5x stragglers only appear in the controlled cluster).
  c.regime_levels = {1.0, 0.95, 0.85, 0.5};
  c.deep_recovery_boost = 8.0;
  return c;
}

CloudTraceConfig bursty_colocation_config() {
  CloudTraceConfig c;
  // Frequent entry into one deep burst regime; the boosted deep-regime
  // switch probability clears a burst within a couple of samples, so the
  // signature is a high baseline pocked with short deep dips.
  c.switch_prob = 0.10;
  c.ar_sigma = 0.012;
  c.recovery_ramp = 2;
  c.regime_levels = {1.0, 0.95, 0.4};
  c.deep_recovery_boost = 6.0;
  return c;
}

CloudTraceConfig diurnal_config() {
  CloudTraceConfig c;
  c.switch_prob = 0.0;  // no regime churn — the period is the story
  c.ar_sigma = 0.006;
  c.regime_levels = {0.9};
  c.periodic_amplitude = 0.3;
  c.periodic_period = 16.0;
  c.periodic_period_jitter = 0.15;
  return c;
}

std::vector<double> fail_slow_series(std::size_t length,
                                     const FailSlowConfig& config,
                                     bool affected, util::Rng& rng) {
  S2C2_REQUIRE(length > 0, "series length must be positive");
  S2C2_REQUIRE(config.decay_per_sample > 0.0 && config.decay_per_sample < 1.0,
               "decay_per_sample in (0,1)");
  S2C2_REQUIRE(config.floor_speed > 0.0, "floor_speed must be positive");
  std::vector<double> out(length);
  const std::size_t onset = static_cast<std::size_t>(
      rng.uniform(config.onset_fraction_min, config.onset_fraction_max) *
      static_cast<double>(length));
  double base = 1.0;
  for (std::size_t t = 0; t < length; ++t) {
    if (affected && t >= onset) {
      base = std::max(config.floor_speed, base * config.decay_per_sample);
    }
    out[t] = std::max(config.floor_speed * 0.5,
                      base + rng.normal(0.0, config.ar_sigma));
  }
  return out;
}

std::vector<std::vector<double>> fail_slow_corpus(std::size_t num_series,
                                                  std::size_t length,
                                                  const FailSlowConfig& config,
                                                  util::Rng& rng) {
  std::vector<std::vector<double>> corpus;
  corpus.reserve(num_series);
  for (std::size_t i = 0; i < num_series; ++i) {
    const bool affected = rng.bernoulli(config.affected_fraction);
    corpus.push_back(fail_slow_series(length, config, affected, rng));
  }
  return corpus;
}

std::vector<double> cloud_speed_series(std::size_t length,
                                       const CloudTraceConfig& config,
                                       util::Rng& rng) {
  S2C2_REQUIRE(length > 0, "series length must be positive");
  S2C2_REQUIRE(!config.regime_levels.empty(), "need at least one regime");
  std::vector<double> out(length);

  std::size_t regime = static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(
                             config.regime_levels.size() - 1)));
  double level = config.regime_levels[regime];
  double x = level;             // AR(1) state around the regime level
  double ramp_from = level;    // recovery ramp bookkeeping
  std::size_t ramp_left = 0;
  const double phase = rng.uniform(0.0, 2.0 * 3.14159265358979323846);
  const double period =
      config.periodic_period *
      rng.uniform(1.0 - config.periodic_period_jitter,
                  1.0 + config.periodic_period_jitter);

  const double deepest =
      *std::min_element(config.regime_levels.begin(),
                        config.regime_levels.end());
  for (std::size_t t = 0; t < length; ++t) {
    double switch_prob = config.switch_prob;
    if (level == deepest && config.regime_levels.size() > 1) {
      switch_prob = std::min(1.0, switch_prob * config.deep_recovery_boost);
    }
    if (rng.bernoulli(switch_prob)) {
      const auto next = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(config.regime_levels.size() - 1)));
      const double next_level =
          config.continuous_levels
              ? rng.uniform(config.continuous_level_min, 1.0)
              : config.regime_levels[next];
      if (next_level < level) {
        // Drops hit instantly (contention arrives, not departs).
        level = next_level;
        x = level;
        ramp_left = 0;
      } else {
        // Recoveries ramp over several samples — the asymmetry the LSTM
        // can learn and an AR(1) cannot.
        ramp_from = x;
        level = next_level;
        ramp_left = config.recovery_ramp;
      }
      regime = next;
    }
    double target = level;
    if (ramp_left > 0) {
      const double frac = 1.0 - static_cast<double>(ramp_left) /
                                    static_cast<double>(config.recovery_ramp);
      target = ramp_from + (level - ramp_from) * frac;
      --ramp_left;
    }
    x = target + config.ar_rho * (x - target) +
        rng.normal(0.0, config.ar_sigma);
    double value = x;
    if (config.periodic_amplitude > 0.0) {
      // Applied at the output (not the AR target) so the oscillation is
      // not low-passed away by the mean-reversion filter.
      value *= 1.0 + config.periodic_amplitude *
                         std::sin(2.0 * 3.14159265358979323846 *
                                      static_cast<double>(t) / period +
                                  phase);
    }
    out[t] = std::max(config.min_speed, value);
  }
  return out;
}

std::vector<std::vector<double>> cloud_speed_corpus(
    std::size_t num_series, std::size_t length, const CloudTraceConfig& config,
    util::Rng& rng) {
  std::vector<std::vector<double>> corpus;
  corpus.reserve(num_series);
  for (std::size_t i = 0; i < num_series; ++i) {
    corpus.push_back(cloud_speed_series(length, config, rng));
  }
  return corpus;
}

std::vector<sim::SpeedTrace> controlled_cluster_traces(
    std::size_t num_workers, std::size_t num_stragglers, double variation,
    util::Rng& rng, double straggler_speed) {
  S2C2_REQUIRE(num_stragglers <= num_workers, "too many stragglers");
  S2C2_REQUIRE(variation >= 0.0 && variation < 1.0, "variation in [0,1)");
  std::vector<sim::SpeedTrace> traces;
  traces.reserve(num_workers);
  for (std::size_t w = 0; w < num_workers; ++w) {
    if (w >= num_workers - num_stragglers) {
      traces.push_back(sim::SpeedTrace::constant(straggler_speed));
    } else {
      traces.push_back(
          sim::SpeedTrace::constant(rng.uniform(1.0 - variation, 1.0)));
    }
  }
  return traces;
}

std::vector<sim::SpeedTrace> traces_from_series(
    const std::vector<std::vector<double>>& series, sim::Time dt) {
  std::vector<sim::SpeedTrace> out;
  out.reserve(series.size());
  for (const auto& s : series) {
    out.push_back(sim::SpeedTrace::from_samples(s, dt));
  }
  return out;
}

}  // namespace s2c2::workload
