#include "src/workload/datasets.h"

#include <cmath>

#include "src/util/require.h"

namespace s2c2::workload {

Dataset make_classification(std::size_t samples, std::size_t features,
                            util::Rng& rng, double mean_shift, double noise) {
  S2C2_REQUIRE(samples >= 2 && features >= 1, "dataset too small");
  // Random unit direction for class separation.
  linalg::Vector dir(features);
  double norm = 0.0;
  for (double& d : dir) {
    d = rng.normal();
    norm += d * d;
  }
  norm = std::sqrt(norm);
  for (double& d : dir) d /= norm;

  Dataset ds{linalg::Matrix(samples, features), linalg::Vector(samples)};
  for (std::size_t i = 0; i < samples; ++i) {
    const double label = (i % 2 == 0) ? 1.0 : -1.0;
    ds.y[i] = label;
    auto row = ds.x.row(i);
    for (std::size_t j = 0; j < features; ++j) {
      row[j] = label * mean_shift * dir[j] + rng.normal(0.0, noise);
    }
  }
  return ds;
}

}  // namespace s2c2::workload
