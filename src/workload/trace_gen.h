// Synthetic speed-trace generation (substitute for the paper's measured
// DigitalOcean data, Fig 2 — see docs/DESIGN.md §2).
//
// The paper's empirical observations drive the generator's structure:
//  * speeds vary slowly — "within 10% for about 10 samples in the
//    neighborhood" — modelled as an AR(1) wander around a regime mean;
//  * occasional drastic changes — modelled as a Markov regime switch with
//    an instant drop and a multi-sample recovery ramp (asymmetric, which is
//    exactly the nonlinearity an LSTM can exploit over ARIMA);
//  * partial stragglers retain a fraction of nominal speed (the paper's
//    controlled-cluster stragglers are 5x slower, i.e. speed 0.2).
#pragma once

#include <cstddef>
#include <vector>

#include "src/sim/speed_trace.h"
#include "src/util/rng.h"

namespace s2c2::workload {

struct CloudTraceConfig {
  std::vector<double> regime_levels{1.0, 0.8, 0.55, 0.2};
  double switch_prob = 0.02;   // per-sample probability of a regime jump
  double ar_rho = 0.85;        // within-regime mean reversion
  double ar_sigma = 0.015;     // within-regime noise stddev
  std::size_t recovery_ramp = 6;  // samples to ramp back up after a jump
  double min_speed = 0.05;
  /// When true, each regime switch samples a fresh level uniformly from
  /// [continuous_level_min, 1] instead of the discrete regime_levels —
  /// models fleets where every node sees its own contention level (used by
  /// the Fig 3 storage study, where allocation boundaries must drift).
  bool continuous_levels = false;
  double continuous_level_min = 0.2;
  /// Multiplier on switch_prob while a node sits in its *deepest* regime:
  /// contention bursts (CPU steal) recover much faster than ordinary
  /// regime drift, so deep dips are transient rather than persistent.
  double deep_recovery_boost = 1.0;
  /// Periodic contention (co-tenant batch/cron load): the output is
  /// modulated by amplitude·sin(2π t/T + φ) with a random per-node phase φ
  /// and a per-node period T drawn from periodic_period·[1−jitter, 1+jitter].
  /// Per-node frequencies are the learnable structure behind the LSTM's
  /// §6.1 edge: a recurrent state locks onto each node's own oscillation,
  /// while a single pooled AR(p) filter can fit at most one frequency.
  double periodic_amplitude = 0.0;
  double periodic_period = 24.0;
  double periodic_period_jitter = 0.0;
};

/// Low-volatility environment: nodes effectively stay in their regime for
/// the whole run (paper Fig 8: 0% mis-prediction rate).
[[nodiscard]] CloudTraceConfig stable_cloud_config();

/// High-volatility environment: frequent sudden drops (paper Fig 10: the
/// observed worst case was an 18% mis-prediction rate).
[[nodiscard]] CloudTraceConfig volatile_cloud_config();

/// Bursty colocation: a mostly-fast fleet hit by frequent, deep, but
/// *short-lived* co-tenant bursts (CPU steal) — high switch probability
/// into a deep regime whose own switch probability is boosted so bursts
/// clear within a couple of samples.
[[nodiscard]] CloudTraceConfig bursty_colocation_config();

/// Diurnal contention: per-node periodic modulation (co-tenant cron/batch
/// load) over a quiet baseline — regime machinery off, oscillation on.
[[nodiscard]] CloudTraceConfig diurnal_config();

/// Fail-slow degradation (Gupta et al., PAPERS.md): an affected node
/// starts nominal, then past a random onset decays multiplicatively each
/// sample toward `floor_speed` and stays there — the monotone drift the
/// health monitor's baselines are built to catch. Unaffected nodes wander
/// gently around 1.0.
struct FailSlowConfig {
  double affected_fraction = 0.5;   // chance a node degrades at all
  double onset_fraction_min = 0.15; // onset uniform in this series fraction
  double onset_fraction_max = 0.5;
  double decay_per_sample = 0.97;   // multiplicative decay after onset
  double floor_speed = 0.15;        // degraded steady-state speed
  double ar_sigma = 0.008;          // gentle noise on every sample
};

/// One node's fail-slow series; `affected` selects the degrading branch.
[[nodiscard]] std::vector<double> fail_slow_series(
    std::size_t length, const FailSlowConfig& config, bool affected,
    util::Rng& rng);

/// Corpus of fail-slow node series; each node draws its affected flag from
/// `config.affected_fraction`.
[[nodiscard]] std::vector<std::vector<double>> fail_slow_corpus(
    std::size_t num_series, std::size_t length, const FailSlowConfig& config,
    util::Rng& rng);

/// One node's speed series, one sample per compute iteration.
[[nodiscard]] std::vector<double> cloud_speed_series(
    std::size_t length, const CloudTraceConfig& config, util::Rng& rng);

/// Corpus of independent node series (predictor training / evaluation).
[[nodiscard]] std::vector<std::vector<double>> cloud_speed_corpus(
    std::size_t num_series, std::size_t length, const CloudTraceConfig& config,
    util::Rng& rng);

/// Controlled-cluster traces (paper §6.5/§7.1): `num_stragglers` nodes run
/// at `straggler_speed` (default 5x slower); the rest at speeds uniform in
/// [1-variation, 1]. Straggler slots are the *last* indices so figures
/// match the paper's "worker 4 is the straggler" exposition.
[[nodiscard]] std::vector<sim::SpeedTrace> controlled_cluster_traces(
    std::size_t num_workers, std::size_t num_stragglers, double variation,
    util::Rng& rng, double straggler_speed = 0.2);

/// Converts per-iteration samples to traces with the given nominal
/// iteration duration.
[[nodiscard]] std::vector<sim::SpeedTrace> traces_from_series(
    const std::vector<std::vector<double>>& series, sim::Time dt);

}  // namespace s2c2::workload
