#include "src/workload/graphs.h"

#include <algorithm>

#include "src/util/require.h"

namespace s2c2::workload {

linalg::CsrMatrix power_law_digraph(std::size_t nodes, std::size_t out_degree,
                                    util::Rng& rng) {
  S2C2_REQUIRE(nodes >= 2, "graph needs at least two nodes");
  S2C2_REQUIRE(out_degree >= 1, "need positive out degree");
  std::vector<linalg::Triplet> trips;
  trips.reserve(nodes * out_degree);
  // Repeated-targets list implements preferential attachment in O(E).
  std::vector<std::size_t> attractor{0};
  for (std::size_t v = 1; v < nodes; ++v) {
    const std::size_t fan = std::min(out_degree, v);
    for (std::size_t e = 0; e < fan; ++e) {
      std::size_t target;
      if (rng.bernoulli(0.15)) {
        // Uniform escape hatch keeps the graph from degenerating.
        target = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(v - 1)));
      } else {
        target = attractor[static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(attractor.size() - 1)))];
        if (target >= v) target = static_cast<std::size_t>(v - 1);
      }
      trips.push_back({v, target, 1.0});
      attractor.push_back(target);
    }
    attractor.push_back(v);
  }
  return {nodes, nodes, std::move(trips)};
}

linalg::CsrMatrix random_undirected(std::size_t nodes, double edge_prob,
                                    util::Rng& rng) {
  S2C2_REQUIRE(nodes >= 2, "graph needs at least two nodes");
  S2C2_REQUIRE(edge_prob > 0.0 && edge_prob <= 1.0, "edge_prob in (0,1]");
  std::vector<linalg::Triplet> trips;
  for (std::size_t i = 0; i < nodes; ++i) {
    for (std::size_t j = i + 1; j < nodes; ++j) {
      if (rng.bernoulli(edge_prob)) {
        trips.push_back({i, j, 1.0});
        trips.push_back({j, i, 1.0});
      }
    }
  }
  return {nodes, nodes, std::move(trips)};
}

linalg::CsrMatrix link_matrix(const linalg::CsrMatrix& adj) {
  // Out-degree of each source node (adj row = out-links of that node).
  const std::size_t n = adj.rows();
  std::vector<double> outdeg(n, 0.0);
  const auto rp = adj.row_ptr();
  const auto vals = adj.values();
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t p = rp[r]; p < rp[r + 1]; ++p) outdeg[r] += vals[p];
  }
  const auto ci = adj.col_idx();
  std::vector<linalg::Triplet> trips;
  trips.reserve(adj.nnz());
  for (std::size_t r = 0; r < n; ++r) {
    if (outdeg[r] == 0.0) continue;  // dangling: handled by teleport term
    for (std::size_t p = rp[r]; p < rp[r + 1]; ++p) {
      trips.push_back({ci[p], r, vals[p] / outdeg[r]});
    }
  }
  return {n, n, std::move(trips)};
}

linalg::CsrMatrix combinatorial_laplacian(const linalg::CsrMatrix& adj) {
  const std::size_t n = adj.rows();
  S2C2_REQUIRE(adj.cols() == n, "adjacency must be square");
  const auto rp = adj.row_ptr();
  const auto ci = adj.col_idx();
  const auto vals = adj.values();
  std::vector<linalg::Triplet> trips;
  trips.reserve(adj.nnz() + n);
  for (std::size_t r = 0; r < n; ++r) {
    double deg = 0.0;
    for (std::size_t p = rp[r]; p < rp[r + 1]; ++p) {
      deg += vals[p];
      trips.push_back({r, ci[p], -vals[p]});
    }
    trips.push_back({r, r, deg});
  }
  return {n, n, std::move(trips)};
}

}  // namespace s2c2::workload
