// Synthetic datasets shaped like the paper's workloads.
//
// The paper trains logistic regression / SVM on the UCI gisette dataset
// (dense, 5000 features) duplicated to fill 760 MB per node. We generate a
// two-class Gaussian-blob dataset of configurable shape — for latency
// results only the operand dimensions matter; for convergence tests the
// classes are linearly separable with margin.
#pragma once

#include <cstddef>

#include "src/linalg/matrix.h"
#include "src/util/rng.h"

namespace s2c2::workload {

struct Dataset {
  linalg::Matrix x;   // samples x features
  linalg::Vector y;   // labels in {-1, +1}
};

/// Two Gaussian blobs at ±mean_shift along a random direction.
[[nodiscard]] Dataset make_classification(std::size_t samples,
                                          std::size_t features,
                                          util::Rng& rng,
                                          double mean_shift = 2.0,
                                          double noise = 1.0);

}  // namespace s2c2::workload
