#include "src/sim/network.h"

// NetworkModel is header-only; this TU anchors the module in the library.
namespace s2c2::sim {}
