#include "src/sim/worker.h"

#include "src/util/require.h"

namespace s2c2::sim {

SimWorker::SimWorker(std::size_t id, SpeedTrace trace)
    : id_(id), trace_(std::move(trace)) {}

std::vector<Time> SimWorker::completion_times(
    Time t0, std::span<const double> works) const {
  std::vector<Time> out;
  out.reserve(works.size());
  Time t = t0;
  for (double w : works) {
    if (t == SpeedTrace::kNever) {
      out.push_back(SpeedTrace::kNever);
      continue;
    }
    t = trace_.time_to_complete(t, w);
    out.push_back(t);
  }
  return out;
}

double SimWorker::work_done(Time t0, Time t1) const {
  return trace_.work_between(t0, t1);
}

double SimWorker::average_speed(Time t0, Time t1) const {
  S2C2_REQUIRE(t1 > t0, "empty window");
  return trace_.work_between(t0, t1) / (t1 - t0);
}

}  // namespace s2c2::sim
