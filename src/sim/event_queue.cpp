#include "src/sim/event_queue.h"

#include "src/util/require.h"

namespace s2c2::sim {

EventHandle EventQueue::schedule(Time at, std::function<void()> fn) {
  S2C2_REQUIRE(at >= now_, "cannot schedule events in the past");
  auto alive = std::make_shared<bool>(true);
  queue_.push(Event{at, next_seq_++, std::move(fn), alive});
  return EventHandle(std::move(alive));
}

EventHandle EventQueue::schedule_after(Time delay, std::function<void()> fn) {
  S2C2_REQUIRE(delay >= 0.0, "negative delay");
  return schedule(now_ + delay, std::move(fn));
}

bool EventQueue::run_next() {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    if (!*ev.alive) continue;  // cancelled
    now_ = ev.at;
    ev.fn();
    return true;
  }
  return false;
}

void EventQueue::run_until_empty(std::size_t max_events) {
  std::size_t count = 0;
  while (run_next()) {
    S2C2_CHECK(++count <= max_events, "event budget exhausted (runaway sim?)");
  }
}

bool EventQueue::empty() const noexcept { return queue_.empty(); }

}  // namespace s2c2::sim
