#include "src/sim/speed_trace.h"

#include <algorithm>
#include <cmath>

#include "src/util/require.h"

namespace s2c2::sim {

SpeedTrace::SpeedTrace(std::vector<Time> start_times,
                       std::vector<double> speeds)
    : times_(std::move(start_times)), speeds_(std::move(speeds)) {
  S2C2_REQUIRE(!times_.empty() && times_.size() == speeds_.size(),
               "trace needs parallel non-empty times/speeds");
  S2C2_REQUIRE(times_.front() == 0.0, "trace must start at t=0");
  for (std::size_t i = 1; i < times_.size(); ++i) {
    S2C2_REQUIRE(times_[i] > times_[i - 1], "trace times must increase");
  }
  for (double s : speeds_) {
    S2C2_REQUIRE(s >= 0.0 && std::isfinite(s), "speeds must be finite >= 0");
  }
}

SpeedTrace SpeedTrace::constant(double speed) {
  return SpeedTrace({0.0}, {speed});
}

SpeedTrace SpeedTrace::step(Time t_change, double before, double after) {
  S2C2_REQUIRE(t_change > 0.0, "step time must be positive");
  return SpeedTrace({0.0, t_change}, {before, after});
}

SpeedTrace SpeedTrace::from_samples(std::span<const double> samples, Time dt) {
  S2C2_REQUIRE(!samples.empty(), "need at least one sample");
  S2C2_REQUIRE(dt > 0.0, "sample period must be positive");
  std::vector<Time> times(samples.size());
  for (std::size_t i = 0; i < samples.size(); ++i) {
    times[i] = static_cast<Time>(i) * dt;
  }
  return SpeedTrace(std::move(times),
                    std::vector<double>(samples.begin(), samples.end()));
}

double SpeedTrace::speed_at(Time t) const {
  S2C2_REQUIRE(t >= 0.0, "negative time");
  const auto it = std::upper_bound(times_.begin(), times_.end(), t);
  const auto idx = static_cast<std::size_t>(it - times_.begin()) - 1;
  return speeds_[idx];
}

double SpeedTrace::work_between(Time t0, Time t1) const {
  S2C2_REQUIRE(t0 >= 0.0 && t1 >= t0, "invalid window");
  double work = 0.0;
  for (std::size_t i = 0; i < speeds_.size(); ++i) {
    const Time seg_start = times_[i];
    const Time seg_end =
        (i + 1 < times_.size()) ? times_[i + 1] : std::max(t1, seg_start);
    const Time lo = std::max(t0, seg_start);
    const Time hi = std::min(t1, seg_end);
    if (hi > lo) work += speeds_[i] * (hi - lo);
    if (seg_end >= t1) break;
  }
  return work;
}

Time SpeedTrace::time_to_complete(Time t0, double work) const {
  S2C2_REQUIRE(t0 >= 0.0, "negative time");
  S2C2_REQUIRE(work >= 0.0, "negative work");
  if (work == 0.0) return t0;
  double remaining = work;
  Time t = t0;
  // Find the segment containing t0.
  auto it = std::upper_bound(times_.begin(), times_.end(), t0);
  auto idx = static_cast<std::size_t>(it - times_.begin()) - 1;
  while (true) {
    const double s = speeds_[idx];
    const bool last = idx + 1 == times_.size();
    const Time seg_end = last ? kNever : times_[idx + 1];
    if (s > 0.0) {
      const Time needed = remaining / s;
      if (last || t + needed <= seg_end) return t + needed;
      remaining -= s * (seg_end - t);
    } else if (last) {
      return kNever;  // node is dead with work outstanding
    }
    t = seg_end;
    ++idx;
  }
}

}  // namespace s2c2::sim
