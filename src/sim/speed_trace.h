// Per-worker execution-speed traces.
//
// A trace is a piecewise-constant function speed(t) >= 0 in *relative*
// units (1.0 = nominal node speed; the paper's controlled-cluster
// "straggler" is 0.2, i.e. 5x slower). The simulator needs two integrals:
//   work_between(t0,t1)      — how much work got done in a window, and
//   time_to_complete(t0, w)  — when w units of work finish if started at
//                              t0 (the inverse; +inf if the node dies).
// Both are exact for piecewise-constant traces; no numerical stepping.
#pragma once

#include <limits>
#include <span>
#include <vector>

#include "src/sim/event_queue.h"  // for Time

namespace s2c2::sim {

class SpeedTrace {
 public:
  /// Segment i spans [start_times[i], start_times[i+1]) at speeds[i];
  /// the last segment extends to +inf. start_times[0] must be 0 and the
  /// sequence strictly increasing; speeds must be >= 0.
  SpeedTrace(std::vector<Time> start_times, std::vector<double> speeds);

  static SpeedTrace constant(double speed);

  /// speed = `before` until t_change, then `after` forever.
  static SpeedTrace step(Time t_change, double before, double after);

  /// Piecewise-constant from uniformly-sampled speeds: sample i applies on
  /// [i*dt, (i+1)*dt); the last sample extends forever.
  static SpeedTrace from_samples(std::span<const double> samples, Time dt);

  [[nodiscard]] double speed_at(Time t) const;

  /// ∫_{t0}^{t1} speed(τ) dτ  (work units completed in the window).
  [[nodiscard]] double work_between(Time t0, Time t1) const;

  /// Earliest t such that work_between(t0, t) == work; +inf when the trace
  /// ends at zero speed with work remaining.
  [[nodiscard]] Time time_to_complete(Time t0, double work) const;

  [[nodiscard]] std::size_t num_segments() const noexcept {
    return speeds_.size();
  }

  static constexpr Time kNever = std::numeric_limits<Time>::infinity();

 private:
  std::vector<Time> times_;    // segment start times, times_[0] == 0
  std::vector<double> speeds_;
};

}  // namespace s2c2::sim
