// Minimal deterministic discrete-event core.
//
// The cluster simulator is the substitute for the paper's physical testbed
// (docs/DESIGN.md §2). Determinism rules: ties in event time break by schedule
// order (a monotone sequence number), so a simulation with the same seeds
// replays identically. Events are cancellable — the master cancels a
// straggler's outstanding compute events when it reassigns work (paper
// §4.3) and the replication baseline cancels the loser of each
// speculative-execution race.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

namespace s2c2::sim {

using Time = double;

/// Shared cancellation token; destroying the handle does NOT cancel.
class EventHandle {
 public:
  EventHandle() = default;
  void cancel() {
    if (alive_) *alive_ = false;
  }
  [[nodiscard]] bool cancelled() const { return alive_ && !*alive_; }

 private:
  friend class EventQueue;
  explicit EventHandle(std::shared_ptr<bool> alive)
      : alive_(std::move(alive)) {}
  std::shared_ptr<bool> alive_;
};

class EventQueue {
 public:
  /// Schedules `fn` at absolute time `at` (>= now()).
  EventHandle schedule(Time at, std::function<void()> fn);

  EventHandle schedule_after(Time delay, std::function<void()> fn);

  /// Pops and runs the earliest live event; returns false when drained.
  bool run_next();

  /// Runs to completion; throws std::logic_error past `max_events`
  /// (runaway-simulation guard).
  void run_until_empty(std::size_t max_events = 100'000'000);

  [[nodiscard]] Time now() const noexcept { return now_; }

  [[nodiscard]] bool empty() const noexcept;

 private:
  struct Event {
    Time at;
    std::uint64_t seq;
    std::function<void()> fn;
    std::shared_ptr<bool> alive;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  Time now_ = 0.0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace s2c2::sim
