#include "src/sim/accounting.h"

#include "src/util/require.h"

namespace s2c2::sim {

void Accounting::add_useful(std::size_t w, double work) {
  S2C2_REQUIRE(w < workers_.size(), "worker out of range");
  S2C2_REQUIRE(work >= 0.0, "negative work");
  workers_[w].useful_work += work;
}

void Accounting::add_wasted(std::size_t w, double work) {
  S2C2_REQUIRE(w < workers_.size(), "worker out of range");
  S2C2_REQUIRE(work >= 0.0, "negative work");
  workers_[w].wasted_work += work;
}

void Accounting::add_traffic(std::size_t w, double sent, double received) {
  S2C2_REQUIRE(w < workers_.size(), "worker out of range");
  workers_[w].bytes_sent += sent;
  workers_[w].bytes_received += received;
}

void Accounting::add_busy(std::size_t w, Time t) {
  S2C2_REQUIRE(w < workers_.size(), "worker out of range");
  workers_[w].busy_time += t;
}

const WorkerAccount& Accounting::worker(std::size_t w) const {
  S2C2_REQUIRE(w < workers_.size(), "worker out of range");
  return workers_[w];
}

double Accounting::mean_wasted_fraction() const {
  if (workers_.empty()) return 0.0;
  double acc = 0.0;
  for (const auto& w : workers_) acc += w.wasted_fraction();
  return acc / static_cast<double>(workers_.size());
}

double Accounting::total_wasted() const {
  double acc = 0.0;
  for (const auto& w : workers_) acc += w.wasted_work;
  return acc;
}

double Accounting::total_useful() const {
  double acc = 0.0;
  for (const auto& w : workers_) acc += w.useful_work;
  return acc;
}

}  // namespace s2c2::sim
