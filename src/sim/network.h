// Point-to-point network cost model.
//
// Full-duplex independent master<->worker links (switch fabric, as in the
// paper's InfiniBand cluster and cloud VPC): a message costs a fixed
// per-message latency plus bytes/bandwidth. Broadcast of the input vector
// is modelled as parallel unicasts (the paper's implementation sends x to
// every worker each iteration).
#pragma once

#include <cstddef>

#include "src/sim/event_queue.h"

namespace s2c2::sim {

struct NetworkModel {
  Time latency_s = 1e-3;        // per-message latency
  double bytes_per_s = 1.25e9;  // ~10 Gb/s default

  [[nodiscard]] Time transfer_time(std::size_t bytes) const {
    return latency_s + static_cast<double>(bytes) / bytes_per_s;
  }

  /// Cost of moving a whole data partition (replication / migration paths —
  /// this is what puts data movement on the critical path in Figs 6/7).
  [[nodiscard]] Time partition_move_time(std::size_t bytes) const {
    return transfer_time(bytes);
  }
};

}  // namespace s2c2::sim
