// Work / waste / traffic accounting (paper Figs 9 and 11).
//
// "Wasted computation" is work a worker performed that the master never
// used: a conventional-MDS response outside the fastest k, the partial
// progress of a cancelled straggler, or a speculative copy that lost its
// race. Useful work is everything that contributed to a decoded result.
#pragma once

#include <cstddef>
#include <vector>

#include "src/sim/event_queue.h"

namespace s2c2::sim {

struct WorkerAccount {
  double useful_work = 0.0;
  double wasted_work = 0.0;
  double bytes_sent = 0.0;
  double bytes_received = 0.0;
  Time busy_time = 0.0;

  [[nodiscard]] double wasted_fraction() const {
    const double total = useful_work + wasted_work;
    return total > 0.0 ? wasted_work / total : 0.0;
  }
};

struct RoundStats {
  Time start = 0.0;
  /// Instant the master holds every response a decode needs (including
  /// recovery waves) but has not started decoding — the timestamp idle
  /// workers are speed-probed at, so all predictor observations reflect
  /// the same pre-decode window. Uncoded engines set coverage == end.
  Time coverage = 0.0;
  Time end = 0.0;                  // coverage + master decode
  bool timeout_fired = false;      // mis-prediction / failure recovery ran
  std::size_t reassigned_chunks = 0;  // §4.3 recovery volume, all waves
  std::size_t data_moves = 0;      // partition migrations (baselines)
  // Robustness telemetry (zero on honest clusters / engines without the
  // coded verification pass — see round_executor.cpp and
  // telemetry/health_monitor.h).
  std::size_t byzantine_detected = 0;  // corrupted responders identified
  std::size_t corrupted_chunks = 0;    // chunks carrying a corrupted product
  std::size_t degrading_workers = 0;   // health-monitor drift flags, post-round

  [[nodiscard]] Time latency() const { return end - start; }
};

class Accounting {
 public:
  explicit Accounting(std::size_t num_workers) : workers_(num_workers) {}

  void add_useful(std::size_t w, double work);
  void add_wasted(std::size_t w, double work);
  void add_traffic(std::size_t w, double sent, double received);
  void add_busy(std::size_t w, Time t);

  [[nodiscard]] const WorkerAccount& worker(std::size_t w) const;
  [[nodiscard]] std::size_t num_workers() const { return workers_.size(); }

  /// Mean of per-worker wasted fractions (the figures' headline number).
  [[nodiscard]] double mean_wasted_fraction() const;

  /// Total wasted work across the cluster.
  [[nodiscard]] double total_wasted() const;
  [[nodiscard]] double total_useful() const;

 private:
  std::vector<WorkerAccount> workers_;
};

}  // namespace s2c2::sim
