// Simulated worker: sequential chunk execution over a speed trace.
//
// A worker executes its assigned chunks in order; completion times follow
// from the trace's exact work integral. `progress_at` supports the waste
// accounting when the master cancels outstanding work (how much of the
// assignment had been processed by the cancellation instant).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "src/sim/speed_trace.h"

namespace s2c2::sim {

class SimWorker {
 public:
  SimWorker(std::size_t id, SpeedTrace trace);

  [[nodiscard]] std::size_t id() const noexcept { return id_; }
  [[nodiscard]] const SpeedTrace& trace() const noexcept { return trace_; }

  /// Completion time of each sequential work unit started at t0.
  /// Entries are +inf once the trace dies.
  [[nodiscard]] std::vector<Time> completion_times(
      Time t0, std::span<const double> works) const;

  /// Work accomplished in [t0, t1).
  [[nodiscard]] double work_done(Time t0, Time t1) const;

  /// Average speed over a window (work / wall time); the master derives
  /// observed speeds this way: speed_i = rows_i / response_time_i (§6.2).
  [[nodiscard]] double average_speed(Time t0, Time t1) const;

 private:
  std::size_t id_;
  SpeedTrace trace_;
};

}  // namespace s2c2::sim
